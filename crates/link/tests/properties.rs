//! Property-based tests for link-budget invariants.

use corridor_link::{CoverageProfile, NrCarrier, SignalSource, SnrModel, ThroughputModel};
use corridor_propagation::CalibratedFriis;
use corridor_units::{Db, Dbm, Hertz, Meters};
use proptest::prelude::*;

fn hp() -> CalibratedFriis {
    CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(33.0))
}

fn lp() -> CalibratedFriis {
    CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(20.0))
}

proptest! {
    /// Throughput is monotone non-decreasing in SNR.
    #[test]
    fn throughput_monotone(a in -30.0..60.0f64, b in -30.0..60.0f64) {
        let m = ThroughputModel::nr_default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.spectral_efficiency(Db::new(hi)) >= m.spectral_efficiency(Db::new(lo)));
    }

    /// Spectral efficiency is bounded by [0, Thr_MAX].
    #[test]
    fn throughput_bounded(snr in -100.0..100.0f64) {
        let m = ThroughputModel::nr_default();
        let se = m.spectral_efficiency(Db::new(snr));
        prop_assert!((0.0..=5.84).contains(&se));
    }

    /// Above peak_snr the model always reports peak; below, never.
    #[test]
    fn peak_predicate_consistent(snr in -30.0..60.0f64) {
        let m = ThroughputModel::nr_default();
        let is_peak = m.is_peak(Db::new(snr));
        let se = m.spectral_efficiency(Db::new(snr));
        if is_peak {
            prop_assert!((se - 5.84).abs() < 1e-12);
        } else {
            prop_assert!(se < 5.84);
        }
    }

    /// Adding a repeater source never lowers the total signal.
    #[test]
    fn extra_source_never_lowers_signal(pos in 0.0..2000.0f64, probe in 0.0..2000.0f64) {
        let base = SnrModel::new(NrCarrier::paper_100mhz())
            .with_source(SignalSource::new(Meters::ZERO, Dbm::new(28.81), hp()));
        let with = base.clone().with_source(
            SignalSource::new(Meters::new(pos), Dbm::new(4.81), lp()));
        let at = Meters::new(probe);
        let s1 = base.total_signal_at(at).unwrap();
        let s2 = with.total_signal_at(at).unwrap();
        prop_assert!(s2.value() >= s1.value() - 1e-9);
    }

    /// SNR equals signal minus noise at every sample of a profile.
    #[test]
    fn profile_samples_self_consistent(isd in 200.0..3000.0f64) {
        let model = SnrModel::new(NrCarrier::paper_100mhz())
            .with_source(SignalSource::new(Meters::ZERO, Dbm::new(28.81), hp()))
            .with_source(SignalSource::new(Meters::new(isd), Dbm::new(28.81), hp()));
        let thr = ThroughputModel::nr_default();
        let p = CoverageProfile::sample(&model, Meters::new(isd), Meters::new(10.0), &thr);
        for s in p.samples() {
            prop_assert!(((s.signal - s.noise).value() - s.snr.value()).abs() < 1e-9);
            prop_assert!((s.spectral_efficiency - thr.spectral_efficiency(s.snr)).abs() < 1e-12);
        }
        // min <= mean
        prop_assert!(p.min_snr().unwrap() <= p.mean_snr_db().unwrap());
    }

    /// Repeater noise only ever increases total noise, and total noise is
    /// at least the terminal noise.
    #[test]
    fn noise_floor_is_lower_bound(pos in 0.0..1000.0f64, probe in 0.0..1000.0f64, nf in 0.0..15.0f64) {
        let repeater = SignalSource::new(Meters::new(pos), Dbm::new(4.81), lp())
            .with_emitted_noise(Dbm::new(-132.0) + Db::new(nf));
        let model = SnrModel::new(NrCarrier::paper_100mhz())
            .with_source(SignalSource::new(Meters::ZERO, Dbm::new(28.81), hp()))
            .with_source(repeater);
        let at = Meters::new(probe);
        prop_assert!(model.total_noise_at(at).value() >= model.terminal_noise().value() - 1e-12);
    }

    /// EIRP -> RSTP -> EIRP round trip for arbitrary carriers.
    #[test]
    fn carrier_division_round_trip(eirp in -30.0..70.0f64, sc in 12u32..10_000) {
        let c = NrCarrier::new(Hertz::from_mhz(100.0), sc);
        let down = c.per_subcarrier(Dbm::new(eirp));
        let up = c.total_power(down);
        prop_assert!((up.value() - eirp).abs() < 1e-9);
        prop_assert!(down.value() <= eirp);
    }
}
