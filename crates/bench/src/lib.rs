//! Shared helpers for the reproduction binaries and benches.
//!
//! The binaries (`fig3`, `fig4`, `isd_sweep`, `table1`–`table4`,
//! `headline`, `sweep`) regenerate, as text, every table and figure of
//! the paper plus the batch scenario sweeps; the criterion benches
//! measure the hot paths and run the ablations called out in DESIGN.md.
//! The [`render`] module holds the exact text each reproduction binary
//! prints, so the golden-file regression test can assert it against the
//! committed outputs under `docs/results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod render;

use corridor_core::ScenarioParams;

/// The scenario every binary uses: the paper's defaults.
pub fn scenario() -> ScenarioParams {
    ScenarioParams::paper_default()
}

/// Formats a watt-hour quantity the way the paper's Fig. 4 axis does.
pub fn wh(value: f64) -> String {
    format!("{value:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_paper_default() {
        assert_eq!(scenario(), ScenarioParams::paper_default());
    }

    #[test]
    fn wh_formats_one_decimal() {
        assert_eq!(wh(467.04), "467.0");
    }
}
