//! Hourly load profiles for the off-grid simulation.

use core::fmt;

use corridor_units::{WattHours, Watts};

/// A repeating 24-hour load profile (hourly mean powers).
///
/// The paper's PVGIS runs use "5 h per night continuously in sleep mode
/// while the low-power repeater nodes operate in a mix of sleep mode and
/// full load for the remaining 19 h" — a daily total of 124.1 Wh
/// ([`DailyLoadProfile::repeater_paper_default`]).
///
/// # Examples
///
/// ```
/// use corridor_solar::DailyLoadProfile;
/// let load = DailyLoadProfile::repeater_paper_default();
/// assert!((load.daily_energy().value() - 124.1).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DailyLoadProfile {
    hourly: [Watts; 24],
}

impl DailyLoadProfile {
    /// The paper's repeater profile: sleep power (4.72 W) during the 5
    /// night hours (00:00–05:00), and the service-day average (5.29 W,
    /// sleep + train full-load bursts) for the remaining 19 h.
    pub fn repeater_paper_default() -> Self {
        Self::repeater_profile(Watts::new(4.72), Watts::new(5.2884), 5)
    }

    /// A repeater profile: `night_hours` hours of `sleep_power` starting
    /// at midnight, `day_power` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `night_hours > 24` or a power is negative.
    pub fn repeater_profile(sleep_power: Watts, day_power: Watts, night_hours: usize) -> Self {
        assert!(night_hours <= 24, "night hours exceed a day");
        assert!(
            sleep_power.value() >= 0.0 && day_power.value() >= 0.0,
            "powers must be non-negative"
        );
        let mut hourly = [day_power; 24];
        hourly[..night_hours].fill(sleep_power);
        DailyLoadProfile { hourly }
    }

    /// A flat profile drawing `power` around the clock.
    pub fn constant(power: Watts) -> Self {
        assert!(power.value() >= 0.0, "power must be non-negative");
        DailyLoadProfile {
            hourly: [power; 24],
        }
    }

    /// A profile from explicit hourly powers.
    pub fn from_hourly(hourly: [Watts; 24]) -> Self {
        assert!(
            hourly.iter().all(|p| p.value() >= 0.0),
            "powers must be non-negative"
        );
        DailyLoadProfile { hourly }
    }

    /// Mean power of hour `hour` (0..=23).
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn power_at_hour(&self, hour: usize) -> Watts {
        self.hourly[hour]
    }

    /// Energy drawn during hour `hour`.
    pub fn energy_at_hour(&self, hour: usize) -> WattHours {
        WattHours::new(self.hourly[hour].value())
    }

    /// Total energy per day.
    pub fn daily_energy(&self) -> WattHours {
        WattHours::new(self.hourly.iter().map(|p| p.value()).sum())
    }

    /// Average power over the day.
    pub fn average_power(&self) -> Watts {
        Watts::new(self.daily_energy().value() / 24.0)
    }
}

impl fmt::Display for DailyLoadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "daily load {} (avg {})",
            self.daily_energy(),
            self.average_power()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_daily_energy() {
        let load = DailyLoadProfile::repeater_paper_default();
        // 5·4.72 + 19·5.2884 = 124.08 Wh ≈ paper's 124.1 Wh
        assert!((load.daily_energy().value() - 124.08).abs() < 0.02);
        // 5.17 W average
        assert!((load.average_power().value() - 5.17).abs() < 0.01);
    }

    #[test]
    fn night_hours_use_sleep_power() {
        let load = DailyLoadProfile::repeater_paper_default();
        for h in 0..5 {
            assert_eq!(load.power_at_hour(h), Watts::new(4.72));
        }
        for h in 5..24 {
            assert_eq!(load.power_at_hour(h), Watts::new(5.2884));
        }
    }

    #[test]
    fn constant_profile() {
        let load = DailyLoadProfile::constant(Watts::new(10.0));
        assert_eq!(load.daily_energy(), WattHours::new(240.0));
        assert_eq!(load.average_power(), Watts::new(10.0));
    }

    #[test]
    fn custom_hourly() {
        let mut hours = [Watts::ZERO; 24];
        hours[12] = Watts::new(24.0);
        let load = DailyLoadProfile::from_hourly(hours);
        assert_eq!(load.daily_energy(), WattHours::new(24.0));
        assert_eq!(load.energy_at_hour(12), WattHours::new(24.0));
        assert_eq!(load.energy_at_hour(0), WattHours::ZERO);
        assert_eq!(load.average_power(), Watts::new(1.0));
    }

    #[test]
    fn display() {
        let load = DailyLoadProfile::constant(Watts::new(5.0));
        assert_eq!(load.to_string(), "daily load 120.00 Wh (avg 5.00 W)");
    }

    #[test]
    #[should_panic(expected = "night hours exceed a day")]
    fn invalid_night_hours_rejected() {
        let _ = DailyLoadProfile::repeater_profile(Watts::ZERO, Watts::ZERO, 25);
    }
}
