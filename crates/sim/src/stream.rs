//! Streaming row plumbing shared by the three engines.
//!
//! The in-memory reports ([`SweepReport`](crate::SweepReport),
//! [`McReport`](crate::McReport), [`OptimizeReport`](crate::OptimizeReport))
//! hold every evaluated cell before rendering — fine for thousands of
//! cells, fatal for millions. The engines' `stream` / `stream_rows`
//! methods instead drive the grid through
//! [`rayon::stream_ordered`]: cells are pulled lazily via
//! [`ScenarioGrid::cell_at`](crate::ScenarioGrid::cell_at), evaluated on
//! a bounded window of worker threads, rendered to row strings and
//! handed to a [`RowSink`](corridor_core::sink::RowSink) in grid order.
//! Peak memory is `O(workers × chunk)` whatever the grid size, and the
//! emitted bytes are identical to the in-memory writers' — the contract
//! the streaming-equivalence tests pin with SHA-256 digests.
//!
//! The optional [`ResultCache`](crate::ResultCache) short-circuits the
//! evaluation of cells whose scenario hash already has a stored row
//! pair; this module only counts the hits and misses.

use std::thread;

use corridor_core::sink::{RowFormat, SinkError};
use corridor_core::ScenarioError;

/// Why a streaming run stopped early.
#[derive(Debug)]
pub enum StreamError {
    /// A cell's parameters failed validation (or the worker
    /// configuration was rejected).
    Scenario(ScenarioError),
    /// The sink (or the caller's `emit` callback) refused a row.
    Sink(SinkError),
}

impl core::fmt::Display for StreamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StreamError::Scenario(e) => write!(f, "scenario error: {e}"),
            StreamError::Sink(e) => write!(f, "sink error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Scenario(e) => Some(e),
            StreamError::Sink(e) => Some(e),
        }
    }
}

impl From<ScenarioError> for StreamError {
    fn from(e: ScenarioError) -> Self {
        StreamError::Scenario(e)
    }
}

impl From<SinkError> for StreamError {
    fn from(e: SinkError) -> Self {
        StreamError::Sink(e)
    }
}

/// What a completed streaming run processed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Grid cells evaluated or served from the cache.
    pub cells: u64,
    /// Rows emitted (one per cell; an optimizer "row" is the cell's
    /// whole frontier chunk).
    pub rows: u64,
    /// Cells served from the [`ResultCache`](crate::ResultCache).
    pub cache_hits: u64,
    /// Cells computed and (when caching) stored.
    pub cache_misses: u64,
}

impl StreamSummary {
    /// Fraction of cells served from the cache (`0.0` without one).
    pub fn hit_rate(&self) -> f64 {
        if self.cells == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.cells as f64
    }
}

/// One cell's row rendered in both formats — the unit the result cache
/// stores, so a single evaluation warms both the CSV and JSON streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RowPair {
    pub(crate) csv: String,
    pub(crate) json: String,
}

impl RowPair {
    pub(crate) fn get(&self, format: RowFormat) -> &str {
        match format {
            RowFormat::Csv => &self.csv,
            RowFormat::Json => &self.json,
        }
    }
}

/// The evaluated output of one work item (a chunk of one or more cells).
pub(crate) struct ChunkRows {
    pub(crate) rows: Vec<RowPair>,
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
}

/// Resolves an engine's worker setting for the streaming path: `Some(0)`
/// is the usual misconfiguration error, `None` means machine
/// parallelism (mirroring the pool builder's `num_threads(0)`).
pub(crate) fn resolve_workers(workers: Option<usize>) -> Result<usize, ScenarioError> {
    match workers {
        Some(0) => Err(ScenarioError::ZeroWorkers),
        Some(n) => Ok(n),
        None => Ok(thread::available_parallelism().map_or(1, usize::from)),
    }
}

/// Drives `compute` over `items` on `workers` threads with a bounded
/// reorder window, emitting each chunk's rows in item order.
///
/// The window is `2 × workers`: enough look-ahead to keep every worker
/// busy across chunk-cost skew, small enough that an emission stall
/// (slow sink) back-pressures the computation instead of buffering the
/// whole grid.
pub(crate) fn drive<I, T>(
    workers: usize,
    items: I,
    format: RowFormat,
    compute: impl Fn(T) -> Result<ChunkRows, ScenarioError> + Sync,
    emit: &mut impl FnMut(&str) -> Result<(), StreamError>,
) -> Result<StreamSummary, StreamError>
where
    I: Iterator<Item = T> + Send,
    T: Send,
{
    let window = workers.saturating_mul(2).max(2);
    let mut summary = StreamSummary::default();
    rayon::stream_ordered(
        items,
        workers,
        window,
        compute,
        |chunk: Result<ChunkRows, ScenarioError>| -> Result<(), StreamError> {
            let chunk = chunk?;
            for pair in &chunk.rows {
                emit(pair.get(format))?;
            }
            summary.cells += chunk.rows.len() as u64;
            summary.rows += chunk.rows.len() as u64;
            summary.cache_hits += chunk.cache_hits;
            summary.cache_misses += chunk.cache_misses;
            Ok(())
        },
    )?;
    Ok(summary)
}

/// Splits `range` into `chunk`-sized sub-ranges, lazily.
pub(crate) fn chunked_ranges(
    range: core::ops::Range<usize>,
    chunk: usize,
) -> impl Iterator<Item = core::ops::Range<usize>> + Send {
    debug_assert!(chunk > 0);
    let (start, end) = (range.start, range.end);
    (0..(end - start).div_ceil(chunk)).map(move |i| {
        let lo = start + i * chunk;
        lo..(lo + chunk).min(end)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_hit_rate() {
        let mut s = StreamSummary::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.cells = 10;
        s.cache_hits = 4;
        assert!((s.hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn chunked_ranges_cover_without_overlap() {
        let chunks: Vec<_> = chunked_ranges(3..20, 8).collect();
        assert_eq!(chunks, vec![3..11, 11..19, 19..20]);
        assert!(chunked_ranges(5..5, 8).next().is_none());
    }

    #[test]
    fn zero_workers_rejected_none_resolves() {
        assert_eq!(
            resolve_workers(Some(0)).unwrap_err(),
            ScenarioError::ZeroWorkers
        );
        assert_eq!(resolve_workers(Some(3)).unwrap(), 3);
        assert!(resolve_workers(None).unwrap() >= 1);
    }

    #[test]
    fn error_display_and_conversions() {
        let e: StreamError = ScenarioError::ZeroWorkers.into();
        assert!(e.to_string().contains("scenario error"));
        let e: StreamError = SinkError::Closed.into();
        assert!(e.to_string().contains("sink error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
