//! Typed reproductions of every table and figure in the paper.
//!
//! Each function returns plain data; the `corridor-bench` binaries render
//! them as text, and EXPERIMENTS.md records the comparison with the
//! published values.

use corridor_deploy::{CorridorLayout, IsdOptimizer, IsdTable};
use corridor_fronthaul::{ChainReport, FronthaulChain, MmWaveBand};
use corridor_power::{DutyCycle, RepeaterBill};
use corridor_propagation::emf::{self, EmfLimit};
use corridor_solar::{climate, sizing, DailyLoadProfile, Location};
use corridor_traffic::{ActivityTimeline, TrackSection};
use corridor_units::{Dbm, Hours, Meters, WattHours, Watts};

use crate::{energy, EnergyStrategy, ScenarioParams};

/// One sampled position of the Fig. 3 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Sample {
    /// Track position.
    pub position: Meters,
    /// RSRP of the left high-power site.
    pub hp_left: Dbm,
    /// RSRP of the right high-power site.
    pub hp_right: Dbm,
    /// RSRP of each low-power node, in track order.
    pub lp_nodes: Vec<Dbm>,
    /// Linear sum of all signal powers.
    pub total_signal: Dbm,
    /// Total noise power (terminal + repeater noise).
    pub total_noise: Dbm,
}

/// Fig. 3: signal and noise power along a 2400 m segment with 8 repeater
/// nodes.
///
/// # Examples
///
/// ```
/// use corridor_core::{experiments, ScenarioParams};
/// let fig3 = experiments::fig3(&ScenarioParams::paper_default());
/// assert!(fig3.iter().all(|s| s.total_signal.value() > -100.0));
/// ```
pub fn fig3(params: &ScenarioParams) -> Vec<Fig3Sample> {
    fig3_with(params, Meters::new(2400.0), 8, Meters::new(10.0))
}

/// Fig. 3 with configurable geometry and sampling.
///
/// # Panics
///
/// Panics if the repeaters cannot be placed in the segment.
pub fn fig3_with(params: &ScenarioParams, isd: Meters, n: usize, step: Meters) -> Vec<Fig3Sample> {
    let layout = CorridorLayout::with_policy(isd, n, params.placement())
        // corridor-lint: allow(no-panic, reason = "documented `# Panics` API: the figure helpers panic on unplaceable geometry by contract")
        .expect("paper geometry is placeable");
    let model = layout.snr_model(params.budget());
    let samples = (isd.value() / step.value()).round() as usize;
    (0..=samples)
        .map(|i| {
            let position = Meters::new(i as f64 * step.value()).min(isd);
            let rsrp = model.rsrp_per_source(position);
            Fig3Sample {
                position,
                hp_left: rsrp[0],
                hp_right: rsrp[1],
                lp_nodes: rsrp[2..].to_vec(),
                // corridor-lint: allow(no-panic, reason = "layout.snr_model always installs the two mast sources, so the model is never empty")
                total_signal: model.total_signal_at(position).expect("sources exist"),
                total_noise: model.total_noise_at(position),
            }
        })
        .collect()
}

/// The max-ISD sweep of Section V: the computed table next to the
/// published one.
#[derive(Debug, Clone, PartialEq)]
pub struct IsdSweep {
    /// The table computed by this crate's calibrated model.
    pub computed: IsdTable,
    /// The paper's published sequence.
    pub paper: IsdTable,
}

/// Runs the maximum-ISD sweep for 0..=10 repeater nodes (paper Section V).
///
/// This is the expensive experiment (hundreds of coverage profiles);
/// `sample_step` trades accuracy for time (the paper-matching results use
/// 5 m).
pub fn isd_sweep(params: &ScenarioParams, sample_step: Meters) -> IsdSweep {
    let optimizer = IsdOptimizer::new(params.budget().clone())
        .with_placement(params.placement().clone())
        .with_sample_step(sample_step);
    IsdSweep {
        computed: optimizer.sweep(10),
        paper: IsdTable::paper(),
    }
}

/// One bar group of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Row {
    /// Number of low-power repeater nodes (0 = conventional).
    pub n: usize,
    /// Inter-site distance achieved with `n` nodes.
    pub isd: Meters,
    /// Average energy per hour per km, repeaters continuously powered.
    pub continuous: WattHours,
    /// Average energy per hour per km, repeaters in sleep mode.
    pub sleep: WattHours,
    /// Average energy per hour per km, repeaters solar-powered.
    pub solar: WattHours,
}

impl Fig4Row {
    /// Savings of each strategy versus `baseline` Wh/h/km, in figure
    /// order (continuous, sleep, solar).
    pub fn savings_vs(&self, baseline: WattHours) -> [f64; 3] {
        [
            1.0 - self.continuous / baseline,
            1.0 - self.sleep / baseline,
            1.0 - self.solar / baseline,
        ]
    }
}

/// Fig. 4: average energy per hour per km for the conventional corridor
/// (first row, `n = 0`) and for 1–10 repeater nodes under the three
/// strategies, using the given ISD table.
///
/// # Examples
///
/// ```
/// use corridor_core::{experiments, ScenarioParams};
/// use corridor_deploy::IsdTable;
///
/// let rows = experiments::fig4(&ScenarioParams::paper_default(), &IsdTable::paper());
/// assert_eq!(rows.len(), 11);
/// let baseline = rows[0].sleep;
/// // ten solar-powered nodes: 79 % below the conventional corridor
/// let savings = rows[10].savings_vs(baseline)[2];
/// assert!((savings - 0.79).abs() < 0.01);
/// ```
pub fn fig4(params: &ScenarioParams, table: &IsdTable) -> Vec<Fig4Row> {
    (0..=table.max_nodes())
        .filter_map(|n| {
            let isd = table.isd_for(n)?;
            let row = |strategy| {
                energy::average_power_per_km(params, n, isd, strategy).hourly_energy_per_km()
            };
            Some(Fig4Row {
                n,
                isd,
                continuous: row(EnergyStrategy::ContinuousRepeaters),
                sleep: row(EnergyStrategy::SleepModeRepeaters),
                solar: row(EnergyStrategy::SolarPoweredRepeaters),
            })
        })
        .collect()
}

/// The headline numbers quoted in the paper's text (Section V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadlineNumbers {
    /// HP full-load share of the day at 500 m ISD (paper: 2.85 %).
    pub hp_duty_500m: f64,
    /// HP full-load share of the day at 2650 m ISD (paper: 9.66 %).
    pub hp_duty_2650m: f64,
    /// Sleep-mode repeater average power (paper: 5.17 W).
    pub repeater_average_power: Watts,
    /// Sleep-mode repeater daily energy (paper: 124.1 Wh).
    pub repeater_daily_energy: WattHours,
    /// Savings with 1 node, sleep mode (paper: 57 %).
    pub savings_sleep_1: f64,
    /// Savings with 10 nodes, sleep mode (paper: 74 %).
    pub savings_sleep_10: f64,
    /// Savings with 1 node, solar (paper: 59 %).
    pub savings_solar_1: f64,
    /// Savings with 10 nodes, solar (paper: 79 %).
    pub savings_solar_10: f64,
}

/// Computes the paper's Section V-A headline numbers.
pub fn headline_numbers(params: &ScenarioParams) -> HeadlineNumbers {
    let duty_at = |isd: f64| {
        let section = TrackSection::new(Meters::ZERO, Meters::new(isd));
        let activity = ActivityTimeline::for_section(&section, &params.timetable().passes());
        activity.total_active().value() / 86_400.0
    };
    let service_section = TrackSection::around(Meters::new(600.0), params.lp_spacing());
    let service_activity =
        ActivityTimeline::for_section(&service_section, &params.timetable().passes());
    let duty = DutyCycle::over_day(service_activity.total_active_hours(), Hours::ZERO);
    let table = IsdTable::paper();
    let savings = |n, strategy| {
        energy::savings_vs_conventional(params, &table, n, strategy)
            // corridor-lint: allow(no-panic, reason = "n is drawn from 1..=10 below and IsdTable::paper() covers exactly 0-10 nodes")
            .expect("the paper ISD table covers 1-10 nodes")
    };

    HeadlineNumbers {
        hp_duty_500m: duty_at(500.0),
        hp_duty_2650m: duty_at(2650.0),
        repeater_average_power: duty.average_power(params.lp_node()),
        repeater_daily_energy: duty.daily_energy(params.lp_node()),
        savings_sleep_1: savings(1, EnergyStrategy::SleepModeRepeaters),
        savings_sleep_10: savings(10, EnergyStrategy::SleepModeRepeaters),
        savings_solar_1: savings(1, EnergyStrategy::SolarPoweredRepeaters),
        savings_solar_10: savings(10, EnergyStrategy::SolarPoweredRepeaters),
    }
}

/// Architecture check (paper Fig. 1): the daisy-chained V-band mmWave
/// fronthaul of a segment — every donor→node hop must close its budget.
///
/// # Panics
///
/// Panics if the repeaters cannot be placed in the segment.
///
/// # Examples
///
/// ```
/// use corridor_core::{experiments, ScenarioParams};
/// use corridor_units::Meters;
/// let report = experiments::fronthaul_check(
///     &ScenarioParams::paper_default(), Meters::new(2400.0), 8);
/// assert!(report.is_feasible());
/// ```
pub fn fronthaul_check(params: &ScenarioParams, isd: Meters, n: usize) -> ChainReport {
    let positions = params
        .placement()
        .positions(n, isd)
        // corridor-lint: allow(no-panic, reason = "documented `# Panics` API: the figure helpers panic on unplaceable geometry by contract")
        .expect("paper geometry is placeable");
    FronthaulChain::for_segment(MmWaveBand::v_band_60ghz(), &positions, isd).evaluate()
}

/// One row of the EMF compliance summary.
#[derive(Debug, Clone, PartialEq)]
pub struct EmfRow {
    /// Transmitter description.
    pub transmitter: &'static str,
    /// EIRP of the transmitter.
    pub eirp: corridor_units::Dbm,
    /// Compliance distance under the ICNIRP general-public limit.
    pub icnirp_distance: Meters,
    /// Compliance distance under the Swiss NISV installation limit.
    pub nisv_distance: Meters,
}

/// EMF compliance distances for the corridor's transmitters — the
/// regulatory constraint that motivates the paper (Section I).
pub fn emf_compliance(params: &ScenarioParams) -> Vec<EmfRow> {
    let icnirp = EmfLimit::icnirp_general_public();
    let nisv = EmfLimit::swiss_nisv_installation();
    let row = |transmitter, eirp| EmfRow {
        transmitter,
        eirp,
        icnirp_distance: emf::compliance_distance(eirp, &icnirp),
        nisv_distance: emf::compliance_distance(eirp, &nisv),
    };
    vec![
        row("High-power RRH antenna", params.budget().hp_eirp()),
        row("Low-power repeater node", params.budget().lp_eirp()),
    ]
}

/// Table I: the repeater component bill (returns the typed bill; the
/// bench binary renders it).
pub fn table1() -> RepeaterBill {
    RepeaterBill::prototype()
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Node type name.
    pub node_type: &'static str,
    /// The EARTH model parameters.
    pub model: corridor_power::LoadDependentPower,
}

/// Table II: EARTH power-model parameters per node type.
pub fn table2() -> Vec<Table2Row> {
    vec![
        Table2Row {
            node_type: "High-Power RRH",
            model: corridor_power::catalog::high_power_rrh(),
        },
        Table2Row {
            node_type: "Low-Power Repeater",
            model: corridor_power::catalog::low_power_repeater(),
        },
    ]
}

/// Table III: the average-energy calculation parameters (returns the
/// scenario; the bench binary renders the rows).
pub fn table3() -> ScenarioParams {
    ScenarioParams::paper_default()
}

/// One row of the Table IV reproduction.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// The region.
    pub location: Location,
    /// Selected PV peak power.
    pub pv_peak: Watts,
    /// Selected battery capacity.
    pub battery: WattHours,
    /// Mean percentage of days with a full battery.
    pub days_full_pct: f64,
}

/// Table IV: PV sizing for the four example regions under the zero
/// down-time requirement.
///
/// # Panics
///
/// Panics if a region cannot be sized with the paper's candidate ladder
/// (does not happen with the embedded climate).
pub fn table4() -> Vec<Table4Row> {
    let options = sizing::SizingOptions::paper_default();
    climate::paper_regions()
        .into_iter()
        .map(|location| {
            let fit = sizing::size_for_zero_downtime(
                location.clone(),
                DailyLoadProfile::repeater_paper_default(),
                &options,
            )
            // corridor-lint: allow(no-panic, reason = "Table 4 reproduces the paper's solvable sites; an unsolvable site means the constants regressed and the table must not render")
            .unwrap_or_else(|| panic!("{} must be solvable", location.name()));
            Table4Row {
                location,
                pv_peak: fit.pv.peak(),
                battery: fit.battery_capacity,
                days_full_pct: fit.mean_full_battery_fraction() * 100.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScenarioParams {
        ScenarioParams::paper_default()
    }

    #[test]
    fn fig3_structure() {
        let samples = fig3(&params());
        assert_eq!(samples.len(), 241); // 2400 m / 10 m + 1
        let first = &samples[0];
        assert_eq!(first.lp_nodes.len(), 8);
        // at the left mast the left HP dominates
        assert!(first.hp_left > first.hp_right);
        // symmetric segment: total signal symmetric within tolerance
        let last = &samples[samples.len() - 1];
        assert!((first.total_signal.value() - last.total_signal.value()).abs() < 0.1);
    }

    #[test]
    fn fig3_signal_stays_above_minus_100() {
        for s in fig3(&params()) {
            assert!(s.total_signal.value() > -100.0, "at {}", s.position);
        }
    }

    #[test]
    fn fig4_baseline_and_monotonicity() {
        let rows = fig4(&params(), &IsdTable::paper());
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].n, 0);
        // conventional row: all strategies coincide (no repeaters)
        assert!((rows[0].continuous.value() - rows[0].solar.value()).abs() < 1e-9);
        // within a row: continuous >= sleep >= solar
        for row in &rows[1..] {
            assert!(row.continuous >= row.sleep);
            assert!(row.sleep >= row.solar);
        }
    }

    #[test]
    fn headline_numbers_match_paper() {
        let h = headline_numbers(&params());
        assert!(
            (h.hp_duty_500m - 0.0285).abs() < 0.0002,
            "{}",
            h.hp_duty_500m
        );
        assert!(
            (h.hp_duty_2650m - 0.0966).abs() < 0.0002,
            "{}",
            h.hp_duty_2650m
        );
        assert!((h.repeater_average_power.value() - 5.17).abs() < 0.01);
        assert!((h.repeater_daily_energy.value() - 124.1).abs() < 0.1);
        assert!((h.savings_sleep_1 - 0.57).abs() < 0.01);
        assert!((h.savings_sleep_10 - 0.74).abs() < 0.01);
        assert!((h.savings_solar_1 - 0.59).abs() < 0.01);
        assert!((h.savings_solar_10 - 0.79).abs() < 0.01);
    }

    #[test]
    fn table_reproductions() {
        assert_eq!(table1().components().len(), 10);
        let t2 = table2();
        assert_eq!(t2.len(), 2);
        assert_eq!(t2[0].model.p0().value(), 168.0);
        assert_eq!(table3().timetable().trains_per_hour(), 8.0);
    }

    #[test]
    fn fronthaul_feasible_for_paper_geometries() {
        let p = params();
        for (n, isd) in IsdTable::paper().iter().filter(|(n, _)| *n >= 1) {
            let report = fronthaul_check(&p, isd, n);
            assert!(report.is_feasible(), "n={n}: {report}");
        }
    }

    #[test]
    fn emf_rows_show_lp_advantage() {
        let rows = emf_compliance(&params());
        assert_eq!(rows.len(), 2);
        // the repeater's strictest compliance distance is ~16x smaller
        let ratio = rows[0].nisv_distance / rows[1].nisv_distance;
        assert!((ratio - 15.85).abs() < 0.1, "ratio {ratio}");
        assert!(rows[1].nisv_distance.value() < 3.0);
    }

    #[test]
    fn table4_matches_paper_sizing() {
        let rows = table4();
        assert_eq!(rows.len(), 4);
        // Madrid & Lyon: 540 Wp / 720 Wh
        assert_eq!(rows[0].pv_peak.value(), 540.0);
        assert_eq!(rows[0].battery.value(), 720.0);
        assert_eq!(rows[1].pv_peak.value(), 540.0);
        assert_eq!(rows[1].battery.value(), 720.0);
        // Vienna: 540 Wp / 1440 Wh
        assert_eq!(rows[2].pv_peak.value(), 540.0);
        assert_eq!(rows[2].battery.value(), 1440.0);
        // Berlin: 600 Wp / 1440 Wh
        assert_eq!(rows[3].pv_peak.value(), 600.0);
        assert_eq!(rows[3].battery.value(), 1440.0);
        // full-battery percentages decrease northwards (Madrid highest)
        assert!(rows[0].days_full_pct > rows[2].days_full_pct);
    }
}
