//! Streaming SHA-256 (FIPS 180-4) for digest-pinned reports, cache
//! entry checksums and the serve protocol's end-of-stream digests.
//!
//! The offline environment has no hashing crate to lean on, so the
//! implementation lives here, shared by the determinism test layer
//! (which pins report renderings), the scenario result cache (which
//! checksums persisted entries) and the `serve` binary (which seals
//! each response stream with a digest). The streaming [`Sha256`] state
//! is O(1) in the hashed length — a million-row report can be digested
//! without ever holding it in memory.
//!
//! # Examples
//!
//! ```
//! use corridor_core::hash::{sha256_hex, Sha256};
//!
//! // FIPS 180-4 test vector
//! assert_eq!(
//!     sha256_hex(b"abc"),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//!
//! // incremental hashing is equivalent to one-shot hashing
//! let mut h = Sha256::new();
//! h.update(b"ab");
//! h.update(b"c");
//! assert_eq!(h.finalize_hex(), sha256_hex(b"abc"));
//! ```

use core::fmt::Write as _;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 state. Feed bytes with [`Sha256::update`], seal
/// with [`Sha256::finalize_hex`]; memory use is constant regardless of
/// how many bytes pass through.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_bytes: u64,
}

impl Sha256 {
    /// Fresh hash state (the FIPS 180-4 initial vector).
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_bytes: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_bytes += data.len() as u64;
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 64 {
                return;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        let mut chunks = rest.chunks_exact(64);
        for block in chunks.by_ref() {
            let mut buf = [0u8; 64];
            buf.copy_from_slice(block);
            self.compress(&buf);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Total bytes absorbed so far.
    pub fn bytes_hashed(&self) -> u64 {
        self.total_bytes
    }

    /// Applies the final padding and returns the digest as 64 lowercase
    /// hex characters.
    pub fn finalize_hex(mut self) -> String {
        let bit_len = self.total_bytes * 8;
        self.update_padding();
        let mut len_block = [0u8; 8];
        len_block.copy_from_slice(&bit_len.to_be_bytes());
        // after padding, exactly 8 bytes of space remain in the buffer
        self.buf[56..64].copy_from_slice(&len_block);
        let block = self.buf;
        self.compress(&block);
        let mut out = String::with_capacity(64);
        for word in self.state {
            let _ = write!(out, "{word:08x}");
        }
        out
    }

    /// Appends the `0x80` marker and zero-pads to 56 bytes mod 64,
    /// compressing an intermediate block if the marker overflows one.
    fn update_padding(&mut self) {
        self.buf[self.buf_len] = 0x80;
        if self.buf_len >= 56 {
            for b in &mut self.buf[self.buf_len + 1..] {
                *b = 0;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf = [0; 64];
        } else {
            for b in &mut self.buf[self.buf_len + 1..56] {
                *b = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        for (slot, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *slot = slot.wrapping_add(v);
        }
    }
}

impl Default for Sha256 {
    /// Returns [`Sha256::new`].
    fn default() -> Self {
        Sha256::new()
    }
}

/// One-shot SHA-256 of `data`, as 64 lowercase hex characters.
pub fn sha256_hex(data: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_180_4_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        // FIPS 180-4 long-message vector, fed in awkward chunk sizes to
        // exercise every buffering path of the streaming state
        let mut h = Sha256::new();
        let data = [b'a'; 997];
        let mut fed = 0usize;
        while fed < 1_000_000 {
            let take = (1_000_000 - fed).min(data.len());
            h.update(&data[..take]);
            fed += take;
        }
        assert_eq!(h.bytes_hashed(), 1_000_000);
        assert_eq!(
            h.finalize_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_block_boundaries() {
        // lengths straddling the 55/56/64-byte padding edges
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 127, 128, 129, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let one_shot = sha256_hex(&data);
            for split in [0, len / 3, len / 2, len] {
                let mut h = Sha256::new();
                h.update(&data[..split]);
                h.update(&data[split..]);
                assert_eq!(h.finalize_hex(), one_shot, "len={len} split={split}");
            }
        }
    }
}
