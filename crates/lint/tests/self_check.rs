//! The live-tree self check: runs the full lint pass over this
//! workspace on every `cargo test`, so a new violation anywhere in the
//! tree fails the suite — the pass cannot silently rot. A companion
//! test injects a violation into a real live file's source text and
//! asserts the pass catches it, proving the check exercises the same
//! engine (and the same scope mapping) that guards the tree.

use std::fs;
use std::path::{Path, PathBuf};

use corridor_lint::{check_source, run_workspace, scope_for};

/// The workspace root, two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn live_tree_is_clean() {
    let report = run_workspace(&workspace_root()).expect("lint pass runs over the workspace");
    assert!(
        report.is_clean(),
        "lint violations in the live tree:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // A collapse of the file walk would pass is_clean vacuously; the
    // workspace holds well over 100 sources, so pin a floor.
    assert!(
        report.files_scanned > 100,
        "only {} files scanned — walker regressed",
        report.files_scanned
    );
}

#[test]
fn live_tree_has_zero_undocumented_or_stale_waivers() {
    let report = run_workspace(&workspace_root()).expect("lint pass runs over the workspace");
    for w in &report.waivers {
        assert!(
            w.reason.is_some(),
            "undocumented waiver at {}:{} ({})",
            w.file,
            w.line,
            w.rule_id
        );
    }
    let stale: Vec<String> = report
        .unused_waivers()
        .map(|w| format!("{}:{} ({})", w.file, w.line, w.rule_id))
        .collect();
    assert!(
        stale.is_empty(),
        "stale waivers suppress nothing: {stale:?}"
    );
}

#[test]
fn injected_violation_in_a_live_file_is_detected() {
    // Fixture-under-test: take a real library source that scans clean
    // today, append a violation, and re-check the tainted text through
    // the same engine the tree check uses.
    let rel = "crates/core/src/lib.rs";
    let source = fs::read_to_string(workspace_root().join(rel)).expect("live file is readable");
    let scope = scope_for(rel).expect("library sources are in scope");
    assert!(
        check_source(rel, &source, scope).diagnostics.is_empty(),
        "precondition: {rel} scans clean"
    );

    let tainted = format!("{source}\npub fn injected(x: Option<u32>) -> u32 {{ x.unwrap() }}\n");
    let findings = check_source(rel, &tainted, scope);
    assert!(
        findings.diagnostics.iter().any(|d| d.rule_id == "no-panic"),
        "injected unwrap not detected: {:?}",
        findings.diagnostics
    );
}
