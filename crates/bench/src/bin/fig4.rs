//! Regenerates the paper's Fig. 4: average energy consumption per hour,
//! normalized to 1 km, for the conventional corridor and 1–10 repeater
//! nodes under the three operating strategies.

use corridor_bench::{scenario, wh};
use corridor_core::deploy::IsdTable;
use corridor_core::report::TextTable;
use corridor_core::units::Meters;
use corridor_core::{experiments, ScenarioParams};

fn render(params: &ScenarioParams, table: &IsdTable, label: &str) {
    let rows = experiments::fig4(params, table);
    let baseline = rows[0].sleep;
    println!("Fig. 4 ({label}) — average energy [Wh] per hour per km\n");
    let mut out = TextTable::new(vec![
        "nodes".into(),
        "ISD [m]".into(),
        "continuous".into(),
        "sleep".into(),
        "solar".into(),
        "saving cont.".into(),
        "saving sleep".into(),
        "saving solar".into(),
    ]);
    for row in &rows {
        let savings = row.savings_vs(baseline);
        out.add_row(vec![
            row.n.to_string(),
            format!("{:.0}", row.isd.value()),
            wh(row.continuous.value()),
            wh(row.sleep.value()),
            wh(row.solar.value()),
            format!("{:.1} %", savings[0] * 100.0),
            format!("{:.1} %", savings[1] * 100.0),
            format!("{:.1} %", savings[2] * 100.0),
        ]);
    }
    println!("{}", out.render());
}

fn main() {
    let params = scenario();
    render(&params, &IsdTable::paper(), "paper ISD mapping");
    let computed = experiments::isd_sweep(&params, Meters::new(5.0)).computed;
    render(&params, &computed, "computed ISD mapping");
    println!("paper claims: 57 %/74 % sleep-mode and 59 %/79 % solar savings at 1/10 nodes.");
}
