//! Streaming statistics for Monte-Carlo replication sweeps.
//!
//! A [`Welford`] accumulator folds a stream of samples into count, mean,
//! variance, min and max in one pass without storing the samples —
//! numerically stable even for thousands of replications whose values
//! differ only in the low digits (Welford's online algorithm). A finished
//! accumulator summarizes into [`SummaryStats`], the per-cell record the
//! Monte-Carlo report writers serialize.

/// Welford's online mean/variance accumulator, plus running min/max.
///
/// Folding is deterministic: pushing the same samples in the same order
/// always produces bit-identical statistics, which is what lets the
/// Monte-Carlo report stay byte-identical across worker counts (workers
/// evaluate days in parallel; the fold happens serially in seed order).
///
/// # Non-finite samples
///
/// A single NaN or ±∞ sample **poisons** the accumulator: from that
/// sample on, `mean`, `variance`, `stddev`, `ci95`, `min` and `max` all
/// return NaN (and [`Welford::is_poisoned`] returns `true`), while
/// `count` keeps counting every pushed sample. Without the explicit flag
/// the failure would be half-silent — NaN loses every float comparison,
/// so `min`/`max` would freeze at their pre-NaN values while mean/m2 went
/// NaN, and the `.max(0.0)` cancellation guard in `variance` would then
/// *heal* the NaN back to 0.0. One poisoned replication must read as "this
/// statistic is invalid", not as a plausible number — see
/// `docs/backends.md`.
///
/// # Examples
///
/// ```
/// use corridor_core::stats::Welford;
///
/// let mut acc = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.count(), 8);
/// assert!((acc.mean() - 5.0).abs() < 1e-12);
/// // sample (n-1) standard deviation
/// assert!((acc.stddev() - 2.138089935299395).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    poisoned: bool,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            poisoned: false,
        }
    }

    /// Folds one sample in. A non-finite sample poisons the accumulator
    /// (see the type-level docs).
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if !x.is_finite() {
            self.poisoned = true;
        }
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// True once any non-finite sample has been folded in; every
    /// statistic except [`Welford::count`] reads NaN from then on.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Number of samples folded so far (poisoned or not).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean (`0.0` while empty, NaN once poisoned).
    pub fn mean(&self) -> f64 {
        if self.poisoned {
            f64::NAN
        } else if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The unbiased sample variance (n−1 denominator; `0.0` for fewer
    /// than two samples, NaN once poisoned).
    pub fn variance(&self) -> f64 {
        if self.poisoned {
            f64::NAN
        } else if self.count < 2 {
            0.0
        } else {
            // guard the tiny negative m2 that cancellation can leave
            // (safe here: f64::max(NaN, 0.0) would heal a NaN m2 to 0.0,
            // but the poisoned branch above has already returned)
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }

    /// The sample standard deviation (NaN once poisoned).
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the 95 % confidence interval on the mean,
    /// `t · s / √n` with the Student-t critical value for `n − 1`
    /// degrees of freedom (`0.0` for fewer than two samples, NaN once
    /// poisoned).
    ///
    /// The fixed normal quantile 1.96 this method used to apply
    /// understates the interval for small replication counts (at n = 10
    /// the factor is 2.262, a 15 % wider interval); [`t_critical95`]
    /// looks the proper factor up and converges to 1.96 for large n —
    /// see `docs/backends.md` for when to trust a CI.
    pub fn ci95(&self) -> f64 {
        if self.poisoned {
            f64::NAN
        } else if self.count < 2 {
            0.0
        } else {
            t_critical95(self.count - 1) * self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest sample seen (`0.0` while empty, NaN once poisoned).
    pub fn min(&self) -> f64 {
        if self.poisoned {
            f64::NAN
        } else if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample seen (`0.0` while empty, NaN once poisoned).
    pub fn max(&self) -> f64 {
        if self.poisoned {
            f64::NAN
        } else if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Freezes the accumulator into a serializable summary.
    pub fn summary(&self) -> SummaryStats {
        SummaryStats {
            n: self.count(),
            mean: self.mean(),
            stddev: self.stddev(),
            ci95: self.ci95(),
            min: self.min(),
            max: self.max(),
        }
    }
}

impl Default for Welford {
    /// Returns [`Welford::new`].
    fn default() -> Self {
        Welford::new()
    }
}

/// Two-sided 95 % Student-t critical value for `df` degrees of freedom.
///
/// Exact table values for df ≤ 30, then the standard 40/60/120 rows
/// applied as a step function that always uses the *largest tabulated
/// df at or below* the actual one — i.e. the returned factor is never
/// below the true quantile in the tabulated range. Beyond df = 1000 the
/// normal 1.96 applies (the true quantile there is 1.962, a 0.1 %
/// difference). `df = 0` (a single sample) supports no interval at all
/// and returns 0.0.
///
/// # Examples
///
/// ```
/// use corridor_core::stats::t_critical95;
///
/// assert_eq!(t_critical95(9), 2.262);    // n = 10 replications
/// assert_eq!(t_critical95(1), 12.706);   // n = 2: enormous interval
/// assert_eq!(t_critical95(500), 1.98);   // 120-row bracket
/// assert_eq!(t_critical95(5000), 1.96);  // large n: normal quantile
/// ```
pub fn t_critical95(df: u64) -> f64 {
    // standard two-sided 0.05 table (df 1..=30)
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => 0.0,
        1..=30 => TABLE[df as usize - 1],
        31..=39 => 2.042,
        40..=59 => 2.021,
        60..=119 => 2.000,
        120..=1000 => 1.98,
        _ => 1.96,
    }
}

/// The frozen statistics of one metric over a set of replications.
///
/// # Examples
///
/// ```
/// use corridor_core::stats::Welford;
///
/// let mut acc = Welford::new();
/// (1..=100).for_each(|i| acc.push(i as f64));
/// let s = acc.summary();
/// assert_eq!(s.n, 100);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 100.0);
/// // the CI half-width brackets the mean
/// assert!(s.mean - s.ci95 < 50.5 && 50.5 < s.mean + s.ci95);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Number of replications.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub stddev: f64,
    /// Half-width of the 95 % confidence interval on the mean.
    pub ci95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl SummaryStats {
    /// True if `value` lies inside the 95 % confidence interval
    /// `[mean − ci95, mean + ci95]`.
    pub fn ci_covers(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.ci95
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_is_all_zero() {
        let acc = Welford::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.ci95(), 0.0);
        assert_eq!(acc.min(), 0.0);
        assert_eq!(acc.max(), 0.0);
        assert_eq!(Welford::default(), acc);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let mut acc = Welford::new();
        acc.push(42.0);
        assert_eq!(acc.mean(), 42.0);
        assert_eq!(acc.stddev(), 0.0);
        assert_eq!(acc.ci95(), 0.0);
        assert_eq!(acc.min(), 42.0);
        assert_eq!(acc.max(), 42.0);
    }

    #[test]
    fn matches_two_pass_formulas() {
        let samples: Vec<f64> = (0..500).map(|i| ((i * 37) % 113) as f64 * 0.25).collect();
        let mut acc = Welford::new();
        samples.iter().for_each(|&x| acc.push(x));

        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((acc.mean() - mean).abs() < 1e-9);
        assert!((acc.variance() - var).abs() < 1e-9);
        assert_eq!(acc.min(), samples.iter().cloned().fold(f64::MAX, f64::min));
        assert_eq!(acc.max(), samples.iter().cloned().fold(f64::MIN, f64::max));
    }

    #[test]
    fn constant_stream_is_numerically_exact() {
        // the textbook two-pass failure case: large offset, zero spread
        let mut acc = Welford::new();
        (0..10_000).for_each(|_| acc.push(1e9 + 0.5));
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.mean(), 1e9 + 0.5);
    }

    #[test]
    fn ci_shrinks_with_sample_count() {
        // same underlying spread, 16x the samples -> 4x tighter CI
        // (modulated by the Student-t factors of the two sample sizes)
        let wave = |i: u64| ((i % 7) as f64) - 3.0;
        let mut small = Welford::new();
        (0..70).for_each(|i| small.push(wave(i)));
        let mut large = Welford::new();
        (0..70 * 16).for_each(|i| large.push(wave(i)));
        let ratio = small.ci95() / large.ci95();
        let expected = 4.0 * t_critical95(69) / t_critical95(70 * 16 - 1);
        assert!((ratio - expected).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn small_replication_counts_use_student_t() {
        // n = 10 samples of unit stddev: the half-width must carry the
        // t factor 2.262, not the normal 1.96 the old code applied
        let mut acc = Welford::new();
        (0..10).for_each(|i| acc.push(if i % 2 == 0 { 1.0 } else { -1.0 }));
        let expected = 2.262 * acc.stddev() / 10f64.sqrt();
        assert!((acc.ci95() - expected).abs() < 1e-12);
        assert!(acc.ci95() > 1.96 * acc.stddev() / 10f64.sqrt());
    }

    #[test]
    fn t_table_is_monotone_and_converges_to_normal() {
        let mut last = f64::INFINITY;
        for df in 1..=2000 {
            let t = t_critical95(df);
            assert!(t <= last, "df={df}: {t} > {last}");
            assert!(t >= 1.96, "df={df}: {t} below the normal quantile");
            last = t;
        }
        assert_eq!(t_critical95(0), 0.0);
        assert_eq!(t_critical95(2000), 1.96);
    }

    #[test]
    fn non_finite_sample_poisons_every_statistic() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut acc = Welford::new();
            acc.push(1.0);
            acc.push(3.0);
            assert!(!acc.is_poisoned());
            acc.push(bad);
            acc.push(5.0); // later good samples cannot un-poison
            assert!(acc.is_poisoned(), "sample {bad}");
            assert_eq!(acc.count(), 4, "count still tracks every sample");
            assert!(acc.mean().is_nan(), "mean for {bad}");
            assert!(acc.variance().is_nan(), "variance for {bad}");
            assert!(acc.stddev().is_nan(), "stddev for {bad}");
            assert!(acc.ci95().is_nan(), "ci95 for {bad}");
            // the headline bug: min/max used to freeze at 1.0/3.0
            assert!(acc.min().is_nan(), "min for {bad}");
            assert!(acc.max().is_nan(), "max for {bad}");
            let s = acc.summary();
            assert_eq!(s.n, 4);
            assert!(s.mean.is_nan() && s.min.is_nan() && s.max.is_nan());
        }
    }

    #[test]
    fn finite_streams_never_poison() {
        let mut acc = Welford::new();
        (0..1000).for_each(|i| acc.push((i as f64) * 1e10 - 5e12));
        assert!(!acc.is_poisoned());
        assert!(acc.mean().is_finite());
        assert!(acc.stddev().is_finite());
    }

    #[test]
    fn summary_and_coverage() {
        let mut acc = Welford::new();
        [9.0, 10.0, 11.0].iter().for_each(|&x| acc.push(x));
        let s = acc.summary();
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 10.0);
        assert!(s.ci_covers(10.0));
        assert!(s.ci_covers(10.0 + s.ci95));
        assert!(!s.ci_covers(10.0 + s.ci95 + 1e-9));
    }
}
