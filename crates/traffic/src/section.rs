//! Track sections and their occupancy by passing trains.

use core::fmt;

use corridor_units::{Meters, Seconds};

use crate::TrainPass;

/// A contiguous coverage section of the track, `[start, end]`.
///
/// Each radio node serves one section: a high-power mast serves one
/// inter-site distance, a low-power repeater serves the span around its
/// catenary mast (the paper's 200 m node spacing).
///
/// # Examples
///
/// ```
/// use corridor_traffic::{TrackSection, Train, TrainPass};
/// use corridor_units::{Meters, Seconds};
///
/// let section = TrackSection::around(Meters::new(600.0), Meters::new(200.0));
/// assert_eq!(section.start(), Meters::new(500.0));
/// assert_eq!(section.end(), Meters::new(700.0));
///
/// let pass = TrainPass::new(Train::paper_default(), Seconds::ZERO);
/// let (enter, exit) = section.occupancy(&pass);
/// assert!((exit - enter).value() - 10.8 < 0.01); // (200 + 400 m) / 55.6 m/s
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrackSection {
    start: Meters,
    end: Meters,
}

impl TrackSection {
    /// Creates a section from `start` to `end`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: Meters, end: Meters) -> Self {
        assert!(end >= start, "section end before start");
        TrackSection { start, end }
    }

    /// Creates a section of the given `length` centered on `center`.
    pub fn around(center: Meters, length: Meters) -> Self {
        let half = length / 2.0;
        TrackSection::new(center - half, center + half)
    }

    /// Section start position.
    pub fn start(&self) -> Meters {
        self.start
    }

    /// Section end position.
    pub fn end(&self) -> Meters {
        self.end
    }

    /// Section length.
    pub fn length(&self) -> Meters {
        self.end - self.start
    }

    /// The interval `[enter, exit]` during which any part of the train of
    /// `pass` overlaps this section: the head entering at `start` to the
    /// tail clearing `end`. Its duration is `(length + train) / v`.
    pub fn occupancy(&self, pass: &TrainPass) -> (Seconds, Seconds) {
        (pass.head_reaches(self.start), pass.tail_clears(self.end))
    }
}

impl fmt::Display for TrackSection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Train;

    #[test]
    fn around_constructs_symmetric_section() {
        let s = TrackSection::around(Meters::new(1000.0), Meters::new(200.0));
        assert_eq!(s.start(), Meters::new(900.0));
        assert_eq!(s.end(), Meters::new(1100.0));
        assert_eq!(s.length(), Meters::new(200.0));
    }

    #[test]
    fn occupancy_duration_matches_paper() {
        let train = Train::paper_default();
        let pass = TrainPass::new(train, Seconds::new(1000.0));
        // HP section of one ISD (500 m): 16.2 s
        let hp = TrackSection::new(Meters::ZERO, Meters::new(500.0));
        let (enter, exit) = hp.occupancy(&pass);
        assert!(((exit - enter).value() - 16.2).abs() < 0.01);
        // LP section (200 m): 10.8 s
        let lp = TrackSection::around(Meters::new(600.0), Meters::new(200.0));
        let (enter, exit) = lp.occupancy(&pass);
        assert!(((exit - enter).value() - 10.8).abs() < 0.01);
    }

    #[test]
    fn occupancy_ordering_along_track() {
        let pass = TrainPass::new(Train::paper_default(), Seconds::ZERO);
        let near = TrackSection::new(Meters::ZERO, Meters::new(200.0));
        let far = TrackSection::new(Meters::new(2000.0), Meters::new(2200.0));
        let (enter_near, _) = near.occupancy(&pass);
        let (enter_far, _) = far.occupancy(&pass);
        assert!(enter_far > enter_near);
    }

    #[test]
    fn occupancy_consistent_with_overlap_predicate() {
        let pass = TrainPass::new(Train::paper_default(), Seconds::new(100.0));
        let s = TrackSection::new(Meters::new(300.0), Meters::new(800.0));
        let (enter, exit) = s.occupancy(&pass);
        let eps = Seconds::new(0.01);
        assert!(pass.overlaps(s.start(), s.end(), enter + eps));
        assert!(pass.overlaps(s.start(), s.end(), exit - eps));
        assert!(!pass.overlaps(s.start(), s.end(), enter - eps));
        assert!(!pass.overlaps(s.start(), s.end(), exit + eps));
    }

    #[test]
    fn zero_length_section_occupied_for_train_pass_time() {
        let pass = TrainPass::new(Train::paper_default(), Seconds::ZERO);
        let point = TrackSection::new(Meters::new(100.0), Meters::new(100.0));
        let (enter, exit) = point.occupancy(&pass);
        assert!(((exit - enter).value() - 7.2).abs() < 0.01); // 400 m / 55.6
    }

    #[test]
    fn display() {
        let s = TrackSection::new(Meters::ZERO, Meters::new(500.0));
        assert_eq!(s.to_string(), "[0.0 m .. 500.0 m]");
    }

    #[test]
    #[should_panic(expected = "end before start")]
    fn inverted_section_rejected() {
        let _ = TrackSection::new(Meters::new(10.0), Meters::ZERO);
    }
}
