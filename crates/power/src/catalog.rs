//! Equipment presets (paper Table II).

use corridor_units::Watts;

use crate::LoadDependentPower;

/// One high-power remote radio head (one sector/antenna), paper Table II:
/// `Pmax = 40 W`, `P0 = 168 W`, `Δp = 2.8`, `Psleep = 112 W`.
///
/// # Examples
///
/// ```
/// use corridor_power::catalog;
/// assert_eq!(catalog::high_power_rrh().full_load_power().value(), 280.0);
/// ```
pub fn high_power_rrh() -> LoadDependentPower {
    LoadDependentPower::new(Watts::new(40.0), Watts::new(168.0), 2.8, Watts::new(112.0))
}

/// A full corridor mast: two high-power RRHs mounted back-to-back.
///
/// Full load 560 W, idle 336 W, sleep 224 W — the values quoted in the
/// paper's Section III-B.
pub fn high_power_mast() -> LoadDependentPower {
    high_power_rrh().scaled(2.0)
}

/// One low-power repeater node, paper Table II:
/// `Pmax = 1 W`, `P0 = 24.26 W`, `Δp = 4.0`, `Psleep = 4.72 W`.
///
/// The paper's text quotes 28.4 W at full load (the prototype's measured
/// component bill); the EARTH parameterization gives 28.26 W. All headline
/// results (5.17 W average, 124.1 Wh/day) are consistent with the Table I
/// sleep value of 4.72 W and a full-load draw of ≈28.4 W.
pub fn low_power_repeater() -> LoadDependentPower {
    LoadDependentPower::new(Watts::new(1.0), Watts::new(24.26), 4.0, Watts::new(4.72))
}

/// The low-power repeater with the *measured* full-load draw of the
/// prototype (28.38 W per Table I) rather than the EARTH fit.
///
/// Expressed in EARTH form by setting `Δp·Pmax = 28.38 − 24.26 = 4.12 W`.
pub fn low_power_repeater_measured() -> LoadDependentPower {
    LoadDependentPower::new(Watts::new(1.0), Watts::new(24.26), 4.12, Watts::new(4.72))
}

/// An onboard active relay (five frequency bands) as used before Low-E /
/// FSS windows became state of the art: 650 W flat draw (paper
/// Section I). Modelled with no load dependence and no sleep capability.
pub fn onboard_relay() -> LoadDependentPower {
    LoadDependentPower::new(Watts::ZERO, Watts::new(650.0), 0.0, Watts::new(650.0))
}

/// A regular (non-corridor) macro cell site: 3200 W average consumption
/// (paper Section I), used for context in energy comparisons.
pub fn macro_site() -> LoadDependentPower {
    LoadDependentPower::new(
        Watts::new(80.0),
        Watts::new(2976.0),
        2.8,
        Watts::new(1600.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperatingState;

    #[test]
    fn rrh_matches_table_ii() {
        let m = high_power_rrh();
        assert_eq!(m.p_max(), Watts::new(40.0));
        assert_eq!(m.p0(), Watts::new(168.0));
        assert_eq!(m.delta_p(), 2.8);
        assert_eq!(m.p_sleep(), Watts::new(112.0));
    }

    #[test]
    fn mast_is_two_rrhs() {
        let mast = high_power_mast();
        assert_eq!(mast.full_load_power(), Watts::new(560.0));
        assert_eq!(mast.input_power(OperatingState::Idle), Watts::new(336.0));
        assert_eq!(mast.input_power(OperatingState::Sleep), Watts::new(224.0));
    }

    #[test]
    fn repeater_matches_table_ii() {
        let m = low_power_repeater();
        assert_eq!(m.p0(), Watts::new(24.26));
        assert_eq!(m.p_sleep(), Watts::new(4.72));
        assert!((m.full_load_power().value() - 28.26).abs() < 1e-9);
    }

    #[test]
    fn measured_repeater_hits_28_38() {
        let m = low_power_repeater_measured();
        assert!((m.full_load_power().value() - 28.38).abs() < 1e-9);
        assert_eq!(m.p_sleep(), Watts::new(4.72));
    }

    #[test]
    fn repeater_is_small_fraction_of_rrh() {
        // the paper's "5 % of the energy of a regular cell site" claim
        let repeater = low_power_repeater_measured().full_load_power();
        let mast = high_power_mast().full_load_power();
        let fraction = repeater / mast;
        assert!(fraction < 0.06, "repeater/mast = {fraction}");
    }

    #[test]
    fn onboard_relay_flat() {
        let relay = onboard_relay();
        assert_eq!(relay.full_load_power(), Watts::new(650.0));
        assert_eq!(relay.input_power(OperatingState::Sleep), Watts::new(650.0));
    }

    #[test]
    fn macro_site_average() {
        // at moderate load the macro site sits around its 3200 W average
        let m = macro_site();
        assert_eq!(m.full_load_power(), Watts::new(3200.0));
    }
}
