//! Wake policies and the per-node operating state machine.

use core::fmt;

use corridor_traffic::WakeController;
use corridor_units::Seconds;

/// The state of a node's sleep controller in the time-domain simulation.
///
/// Transitions (driven by the event loop):
///
/// ```text
/// Asleep --barrier trip--> Waking --wake delay elapsed--> Active
/// Active --last train cleared--> Drain --guard elapsed--> Asleep
/// Drain  --barrier trip / train enters--> Active
/// ```
///
/// `Waking`, `Active` and `Drain` are all *powered* states (the
/// integrator bills them at full load); only `Asleep` falls back to the
/// strategy's low-power state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeState {
    /// Deep sleep between trains.
    #[default]
    Asleep,
    /// Powering up after a barrier trigger.
    Waking,
    /// Fully operational (a train is in or approaching the section).
    Active,
    /// Guard interval after the last train cleared, before sleeping.
    Drain,
}

impl NodeState {
    /// True for every state that draws full power.
    pub fn is_powered(self) -> bool {
        !matches!(self, NodeState::Asleep)
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeState::Asleep => "asleep",
            NodeState::Waking => "waking",
            NodeState::Active => "active",
            NodeState::Drain => "drain",
        })
    }
}

/// The timing parameters of the sleep/wake state machine.
///
/// Extends the analytic [`WakeController`] (barrier lead + wake delay)
/// with a *guard* interval: how long a node stays powered after the last
/// train clears its section before dropping back to sleep, absorbing
/// sensor debounce and closely following trains.
///
/// # Examples
///
/// ```
/// use corridor_events::WakePolicy;
/// use corridor_units::Seconds;
///
/// let policy = WakePolicy::paper_default();
/// assert_eq!(policy.lead(), Seconds::new(1.0));
/// assert_eq!(policy.wake_delay(), Seconds::new(0.3));
///
/// // the differential harness runs with instant transitions
/// assert_eq!(WakePolicy::instant().guard(), Seconds::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WakePolicy {
    lead: Seconds,
    wake_delay: Seconds,
    guard: Seconds,
}

impl WakePolicy {
    /// A policy with the given barrier lead, wake delay and guard
    /// interval.
    ///
    /// # Panics
    ///
    /// Panics if any duration is negative.
    pub fn new(lead: Seconds, wake_delay: Seconds, guard: Seconds) -> Self {
        assert!(lead.value() >= 0.0, "lead must be non-negative");
        assert!(wake_delay.value() >= 0.0, "wake delay must be non-negative");
        assert!(guard.value() >= 0.0, "guard must be non-negative");
        WakePolicy {
            lead,
            wake_delay,
            guard,
        }
    }

    /// Idealized instant transitions: the node is powered exactly while a
    /// train overlaps its section — the policy under which the
    /// event-driven backend reproduces the closed-form numbers.
    pub fn instant() -> Self {
        WakePolicy::default()
    }

    /// The paper's nominal design: barrier trips 1 s early, the node
    /// wakes in 300 ms, and a 500 ms guard absorbs sensor debounce.
    pub fn paper_default() -> Self {
        WakePolicy::new(Seconds::new(1.0), Seconds::new(0.3), Seconds::new(0.5))
    }

    /// Lifts an analytic [`WakeController`] into a policy with the given
    /// guard interval.
    pub fn from_controller(controller: &WakeController, guard: Seconds) -> Self {
        WakePolicy::new(controller.lead(), controller.wake_delay(), guard)
    }

    /// Barrier lead time (the node is triggered this early).
    pub fn lead(&self) -> Seconds {
        self.lead
    }

    /// Sleep-to-active transition time.
    pub fn wake_delay(&self) -> Seconds {
        self.wake_delay
    }

    /// Powered dwell after the last train clears the section.
    pub fn guard(&self) -> Seconds {
        self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_policy_is_all_zero() {
        let p = WakePolicy::instant();
        assert_eq!(p.lead(), Seconds::ZERO);
        assert_eq!(p.wake_delay(), Seconds::ZERO);
        assert_eq!(p.guard(), Seconds::ZERO);
    }

    #[test]
    fn paper_default_values() {
        let p = WakePolicy::paper_default();
        assert_eq!(p.lead(), Seconds::new(1.0));
        assert_eq!(p.wake_delay(), Seconds::new(0.3));
        assert_eq!(p.guard(), Seconds::new(0.5));
    }

    #[test]
    fn lifts_wake_controller() {
        let ctl = WakeController::paper_default();
        let p = WakePolicy::from_controller(&ctl, Seconds::new(2.0));
        assert_eq!(p.lead(), ctl.lead());
        assert_eq!(p.wake_delay(), ctl.wake_delay());
        assert_eq!(p.guard(), Seconds::new(2.0));
    }

    #[test]
    fn state_helpers_and_display() {
        assert!(!NodeState::Asleep.is_powered());
        assert!(NodeState::Waking.is_powered());
        assert!(NodeState::Active.is_powered());
        assert!(NodeState::Drain.is_powered());
        assert_eq!(NodeState::default(), NodeState::Asleep);
        assert_eq!(NodeState::Asleep.to_string(), "asleep");
        assert_eq!(NodeState::Drain.to_string(), "drain");
    }

    #[test]
    #[should_panic(expected = "guard must be non-negative")]
    fn negative_guard_rejected() {
        let _ = WakePolicy::new(Seconds::ZERO, Seconds::ZERO, Seconds::new(-1.0));
    }
}
