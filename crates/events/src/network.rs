//! Network-day simulation: per-edge event streams driven by shared
//! train itineraries.
//!
//! The single-corridor entry points ([`CorridorSimulator::simulate`],
//! [`SegmentReplicator`](crate::SegmentReplicator)) sample each
//! corridor's traffic independently, which cannot express the
//! correlation a junction imposes: one train crossing a station
//! occupies the adjacent edges in strict succession. A
//! [`NetworkDaySimulator`] therefore takes **itineraries** — one train,
//! many [`Leg`]s — and derives every edge's pass list from the shared
//! clock of the itineraries that traverse it, so occupancy on adjacent
//! edges is correlated *by construction* rather than independently
//! sampled.
//!
//! Each edge is represented by one segment population at its `a`-end
//! (the same [`segment_nodes`] geometry the per-corridor backend uses),
//! and each edge's day runs through the unchanged [`CorridorSimulator`]
//! — arena calendar queue, replay cache and wake state machines
//! included — keyed per edge. Reversed legs enter from the `b`-end and
//! reach the representative segment after crossing the rest of the
//! edge; they are folded in through the same mirroring as
//! [`CorridorSimulator::simulate_double_track`].
//!
//! # Examples
//!
//! ```
//! use corridor_events::{Leg, NetworkDaySimulator, TrainItinerary};
//! use corridor_traffic::Train;
//! use corridor_units::{Meters, Seconds};
//!
//! // two 10 km edges meeting at a junction; one train crosses it
//! let mut net = NetworkDaySimulator::new();
//! let west = net.add_edge(10, Meters::new(2650.0), Meters::new(200.0), Meters::new(10_000.0));
//! let east = net.add_edge(10, Meters::new(2650.0), Meters::new(200.0), Meters::new(10_000.0));
//! let run = TrainItinerary::new(
//!     Train::paper_default(),
//!     Seconds::new(3600.0),
//!     vec![Leg::reverse(west), Leg::forward(east)],
//! );
//! let reports = net.simulate(&[run.clone()]);
//! assert_eq!(reports[west].passes(), 1);
//! assert_eq!(reports[east].passes(), 1);
//! assert_eq!(TrainItinerary::crossings(&[run]), 1);
//! ```

use corridor_traffic::{TrackSection, Train, TrainPass};
use corridor_units::{Hours, Meters, Seconds};

use crate::node::{segment_nodes, NodeKind, NodeSpec};
use crate::report::SimReport;
use crate::sim::CorridorSimulator;
use crate::wake::WakePolicy;

/// One traversal of one edge within an itinerary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Leg {
    edge: usize,
    reversed: bool,
}

impl Leg {
    /// A traversal of `edge` from its `a`-end to its `b`-end.
    pub fn forward(edge: usize) -> Self {
        Leg {
            edge,
            reversed: false,
        }
    }

    /// A traversal of `edge` from its `b`-end to its `a`-end.
    pub fn reverse(edge: usize) -> Self {
        Leg {
            edge,
            reversed: true,
        }
    }

    /// The edge this leg traverses.
    pub fn edge(&self) -> usize {
        self.edge
    }

    /// True when the leg runs `b` to `a`.
    pub fn is_reversed(&self) -> bool {
        self.reversed
    }
}

/// One train's day across the network: a departure clock and the edges
/// it traverses, in order. Leg entry times follow from the shared
/// clock — the train enters leg `i + 1` the moment it clears leg `i` —
/// which is exactly what correlates occupancy across a junction.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainItinerary {
    train: Train,
    departure: Seconds,
    legs: Vec<Leg>,
}

impl TrainItinerary {
    /// An itinerary departing (head entering the first leg) at
    /// `departure`.
    pub fn new(train: Train, departure: Seconds, legs: Vec<Leg>) -> Self {
        TrainItinerary {
            train,
            departure,
            legs,
        }
    }

    /// The train running the itinerary.
    pub fn train(&self) -> Train {
        self.train
    }

    /// The departure clock of the first leg.
    pub fn departure(&self) -> Seconds {
        self.departure
    }

    /// The legs, in traversal order.
    pub fn legs(&self) -> &[Leg] {
        &self.legs
    }

    /// Total junction crossings in a day's itineraries: every
    /// leg-to-leg transition crosses a station.
    pub fn crossings(itineraries: &[TrainItinerary]) -> usize {
        itineraries
            .iter()
            .map(|it| it.legs.len().saturating_sub(1))
            .sum()
    }
}

/// One edge's simulated geometry: the representative segment population
/// at the `a`-end plus the physical length that sets traversal times.
#[derive(Debug, Clone)]
struct EdgeGeometry {
    nodes: Vec<NodeSpec>,
    isd: Meters,
    length: Meters,
}

/// The network-day backend: per-edge segment geometries prepared once,
/// then whole days of shared itineraries replayed through the
/// per-corridor event engine edge by edge.
#[derive(Debug, Clone)]
pub struct NetworkDaySimulator {
    simulator: CorridorSimulator,
    edges: Vec<EdgeGeometry>,
}

impl NetworkDaySimulator {
    /// An empty network day at the default (instant-wake) policy.
    pub fn new() -> Self {
        NetworkDaySimulator {
            simulator: CorridorSimulator::new(),
            edges: Vec::new(),
        }
    }

    /// Replaces the wake policy (applies to every edge).
    #[must_use]
    pub fn with_policy(mut self, policy: WakePolicy) -> Self {
        self.simulator = self.simulator.with_policy(policy);
        self
    }

    /// Adds an edge with `n` service repeaters at `isd`/`spacing` (the
    /// [`segment_nodes`] geometry) and physical `length`, returning its
    /// index. The representative segment sits at the edge's `a`-end;
    /// edges shorter than one segment are clamped to their length.
    pub fn add_edge(&mut self, n: usize, isd: Meters, spacing: Meters, length: Meters) -> usize {
        assert!(length.value() > 0.0, "edge length must be positive");
        let isd = if length < isd { length } else { isd };
        self.edges.push(EdgeGeometry {
            nodes: segment_nodes(n, isd, spacing),
            isd,
            length,
        });
        self.edges.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The node population of `edge`'s representative segment.
    pub fn edge_nodes(&self, edge: usize) -> &[NodeSpec] {
        &self.edges[edge].nodes
    }

    /// The (possibly length-clamped) segment ISD of `edge`.
    pub fn edge_isd(&self, edge: usize) -> Meters {
        self.edges[edge].isd
    }

    /// Splits the itineraries into `edge`'s pass lists: `(up, down)`
    /// passes in segment-local time. A forward leg enters the
    /// representative segment the moment it enters the edge; a reversed
    /// leg first crosses the rest of the edge, so its local origin is
    /// delayed by `(length − isd) / v`.
    pub fn edge_passes(
        &self,
        edge: usize,
        itineraries: &[TrainItinerary],
    ) -> (Vec<TrainPass>, Vec<TrainPass>) {
        let geo = &self.edges[edge];
        let mut up = Vec::new();
        let mut down = Vec::new();
        for it in itineraries {
            let mut clock = it.departure;
            for leg in &it.legs {
                let length = self.edges[leg.edge].length;
                if leg.edge == edge {
                    if leg.reversed {
                        let lead = (length - geo.isd) / it.train.speed();
                        down.push(TrainPass::new(it.train, clock + lead));
                    } else {
                        up.push(TrainPass::new(it.train, clock));
                    }
                }
                clock += length / it.train.speed();
            }
        }
        (up, down)
    }

    /// Simulates one edge's day: the representative segment against the
    /// itineraries' up/down passes, through the per-corridor event
    /// engine (same arena queue and replay cache, keyed per edge by
    /// this call's geometry).
    pub fn simulate_edge(&self, edge: usize, itineraries: &[TrainItinerary]) -> SimReport {
        let geo = &self.edges[edge];
        let (up, down) = self.edge_passes(edge, itineraries);
        self.simulator
            .simulate_double_track(&geo.nodes, &up, &down, geo.isd)
    }

    /// Simulates every edge's day, in edge order.
    pub fn simulate(&self, itineraries: &[TrainItinerary]) -> Vec<SimReport> {
        (0..self.edges.len())
            .map(|edge| self.simulate_edge(edge, itineraries))
            .collect()
    }

    /// Powered hours of an ad-hoc `section` of `edge`'s representative
    /// segment under the day — the time-domain price the scheduler uses
    /// to re-check absorbed demand instead of trusting static edge
    /// demand. The section runs as a single extra repeater against the
    /// same passes.
    pub fn section_powered_hours(
        &self,
        edge: usize,
        section: TrackSection,
        itineraries: &[TrainItinerary],
    ) -> Hours {
        let geo = &self.edges[edge];
        let probe = [NodeSpec::new(NodeKind::ServiceRepeater, section)];
        let (up, down) = self.edge_passes(edge, itineraries);
        let report = self
            .simulator
            .simulate_double_track(&probe, &up, &down, geo.isd);
        report.nodes()[0].trace().powered().hours()
    }
}

impl Default for NetworkDaySimulator {
    /// Returns [`NetworkDaySimulator::new`].
    fn default() -> Self {
        NetworkDaySimulator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_edge_net() -> NetworkDaySimulator {
        let mut net = NetworkDaySimulator::new();
        net.add_edge(
            10,
            Meters::new(2650.0),
            Meters::new(200.0),
            Meters::new(10_000.0),
        );
        net.add_edge(
            10,
            Meters::new(2650.0),
            Meters::new(200.0),
            Meters::new(10_000.0),
        );
        net
    }

    #[test]
    fn a_crossing_itinerary_occupies_both_edges_in_succession() {
        let net = two_edge_net();
        let train = Train::paper_default();
        let run = TrainItinerary::new(
            train,
            Seconds::new(7200.0),
            vec![Leg::forward(0), Leg::forward(1)],
        );
        let (up0, down0) = net.edge_passes(0, std::slice::from_ref(&run));
        let (up1, down1) = net.edge_passes(1, std::slice::from_ref(&run));
        assert_eq!((up0.len(), down0.len()), (1, 0));
        assert_eq!((up1.len(), down1.len()), (1, 0));
        // the second leg starts exactly when the first edge is crossed
        let traverse = Meters::new(10_000.0) / train.speed();
        assert_eq!(up1[0].origin_time(), up0[0].origin_time() + traverse);
        assert_eq!(TrainItinerary::crossings(&[run]), 1);
    }

    #[test]
    fn reversed_legs_reach_the_a_end_segment_last() {
        let net = two_edge_net();
        let train = Train::paper_default();
        let run = TrainItinerary::new(train, Seconds::new(0.0), vec![Leg::reverse(0)]);
        let (up, down) = net.edge_passes(0, &[run]);
        assert!(up.is_empty());
        assert_eq!(down.len(), 1);
        // the head crosses 10 km − isd before entering the segment
        let lead = (Meters::new(10_000.0) - Meters::new(2650.0)) / train.speed();
        assert_eq!(down[0].origin_time(), lead);
    }

    #[test]
    fn edge_days_match_the_single_corridor_engine() {
        // a one-leg itinerary per train is exactly the single-corridor
        // double-track day on the representative segment
        let net = two_edge_net();
        let train = Train::paper_default();
        let runs: Vec<TrainItinerary> = (0..20)
            .map(|i| {
                let t = Seconds::new(600.0 * f64::from(i));
                let leg = if i % 2 == 0 {
                    Leg::forward(0)
                } else {
                    Leg::reverse(0)
                };
                TrainItinerary::new(train, t, vec![leg])
            })
            .collect();
        let report = net.simulate_edge(0, &runs);
        let (up, down) = net.edge_passes(0, &runs);
        let nodes = segment_nodes(10, Meters::new(2650.0), Meters::new(200.0));
        let direct =
            CorridorSimulator::new().simulate_double_track(&nodes, &up, &down, Meters::new(2650.0));
        assert_eq!(report.passes(), direct.passes());
        assert_eq!(report.events_processed(), direct.events_processed());
        for (a, b) in report.nodes().iter().zip(direct.nodes()) {
            assert_eq!(a.trace().powered(), b.trace().powered());
        }
    }

    #[test]
    fn short_edges_clamp_the_segment() {
        let mut net = NetworkDaySimulator::new();
        let e = net.add_edge(
            2,
            Meters::new(2650.0),
            Meters::new(200.0),
            Meters::new(1_000.0),
        );
        assert_eq!(net.edge_isd(e), Meters::new(1_000.0));
        // a reversed leg on a clamped edge has zero lead
        let run = TrainItinerary::new(
            Train::paper_default(),
            Seconds::new(0.0),
            vec![Leg::reverse(e)],
        );
        let (_, down) = net.edge_passes(e, &[run]);
        assert_eq!(down[0].origin_time(), Seconds::ZERO);
    }

    #[test]
    fn section_powered_hours_prices_ad_hoc_sections() {
        let net = two_edge_net();
        let train = Train::paper_default();
        let runs: Vec<TrainItinerary> = (0..10)
            .map(|i| {
                TrainItinerary::new(
                    train,
                    Seconds::new(1800.0 * f64::from(i)),
                    vec![Leg::forward(0)],
                )
            })
            .collect();
        let narrow = net.section_powered_hours(
            0,
            TrackSection::around(Meters::new(1325.0), Meters::new(200.0)),
            &runs,
        );
        let wide = net.section_powered_hours(
            0,
            TrackSection::around(Meters::new(1325.0), Meters::new(600.0)),
            &runs,
        );
        assert!(narrow.value() > 0.0);
        assert!(wide > narrow, "wider sections stay powered longer");
    }
}
