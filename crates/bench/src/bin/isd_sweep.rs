//! Regenerates the maximum-ISD list of Section V: for 0-10 repeater
//! nodes, the largest inter-site distance that still delivers peak 5G NR
//! throughput everywhere (SNR >= 29 dB).
//!
//! The rendering lives in [`corridor_bench::render`] so the golden-file
//! test can assert it against `docs/results/`.

fn main() {
    print!("{}", corridor_bench::render::isd_sweep());
}
