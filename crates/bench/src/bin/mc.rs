//! Monte-Carlo replication sweeps: replays seeded stochastic days over a
//! scenario grid through the event-driven backend and prints per-cell
//! statistics (mean, stddev, 95 % CI, min/max) with a headline-cell
//! check against the analytic 124.07 Wh/day.
//!
//! ```console
//! $ cargo run --release -p corridor_bench --bin mc -- --help
//! $ cargo run --release -p corridor_bench --bin mc -- --grid screening200 --reps 25
//! $ cargo run --release -p corridor_bench --bin mc -- --csv > mc.csv
//! $ cargo run --release -p corridor_bench --bin mc -- --smoke
//! ```
//!
//! Stdout depends only on the options (seed-split RNG streams, no
//! clocks), so piped output is byte-reproducible across runs *and worker
//! counts*; wall-clock timing goes to stderr.

use std::process::ExitCode;
use std::time::Instant;

use corridor_bench::render;
use corridor_core::experiments;
use corridor_core::traffic::DelayModel;
use corridor_core::ScenarioParams;
use corridor_sim::{McEngine, McMetric, ReplicationPlan, ScenarioGrid, TrafficSpec};

const USAGE: &str = "\
usage: mc [options]

options:
  --grid G      paper (1 cell) | smoke3 (3 cells) | screening200 (default)
  --reps N      replications per cell (default: 25)
  --seed N      master seed for the SplitMix64 seed-splitting (default: 42)
  --model M     poisson | jittered | deterministic (default: poisson)
  --workers N   worker threads, 0 = auto (default: 0)
  --csv         print the full per-cell CSV instead of the summary
  --smoke       print the committed mc_smoke golden rendering and exit
                (fixed configuration; not combinable with other options)
  --help        this text
";

struct Options {
    grid: ScenarioGrid,
    grid_name: String,
    reps: usize,
    seed: u64,
    traffic: TrafficSpec,
    workers: usize,
    csv: bool,
    smoke: bool,
}

fn parse(mut args: std::env::Args) -> Result<Option<Options>, String> {
    let mut opts = Options {
        grid: ScenarioGrid::screening_200(),
        grid_name: "screening200".into(),
        reps: 25,
        seed: 42,
        traffic: TrafficSpec::Poisson,
        workers: 0,
        csv: false,
        smoke: false,
    };
    let _ = args.next(); // binary name
    let mut sweep_options: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        if arg != "--smoke" && arg != "--help" && arg != "-h" {
            sweep_options.push(arg.clone());
        }
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--grid" => {
                let name = value("--grid")?;
                opts.grid = match name.as_str() {
                    "paper" => ScenarioGrid::new(),
                    "smoke3" => ScenarioGrid::smoke_3(),
                    "screening200" => ScenarioGrid::screening_200(),
                    other => return Err(format!("unknown grid {other}")),
                };
                opts.grid_name = name;
            }
            "--reps" => {
                opts.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if opts.reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--model" => {
                opts.traffic = match value("--model")?.as_str() {
                    "poisson" => TrafficSpec::Poisson,
                    "jittered" => TrafficSpec::Jittered(DelayModel::typical()),
                    "deterministic" => TrafficSpec::Deterministic,
                    other => return Err(format!("unknown model {other}")),
                };
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--csv" => opts.csv = true,
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown option {other}")),
        }
    }
    // the smoke rendering is fixed (it must match the committed golden
    // byte for byte), so combining it with sweep options would silently
    // ignore them — reject instead
    if opts.smoke && !sweep_options.is_empty() {
        return Err(format!(
            "--smoke renders the fixed golden configuration and cannot be \
             combined with {}",
            sweep_options.join(" ")
        ));
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse(std::env::args()) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("mc: {message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if opts.smoke {
        print!("{}", render::mc_smoke());
        return ExitCode::SUCCESS;
    }

    let plan = ReplicationPlan::new(opts.reps)
        .master_seed(opts.seed)
        .traffic(opts.traffic);
    let mut engine = McEngine::new();
    if opts.workers > 0 {
        engine = engine.workers(opts.workers);
    }

    let started = Instant::now();
    let report = match engine.run(&opts.grid, &plan) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("mc: {err}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();

    if opts.csv {
        print!("{}", report.to_csv());
    } else {
        println!("Monte-Carlo replication sweep — event-driven backend");
        println!();
        println!(
            "grid: {} ({} cells)  model: {}  replications: {}  master seed: {}",
            opts.grid_name,
            report.len(),
            report.traffic(),
            report.replications(),
            report.master_seed()
        );
        println!("cell-days simulated: {}", report.cell_days());
        println!();

        // the statistics of the whole grid, by metric
        for metric in [
            McMetric::SleepWhKm,
            McMetric::SavingSleepPct,
            McMetric::RepeaterWhDay,
        ] {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut widest = 0.0f64;
            for r in report.results() {
                let s = r.stats(metric);
                lo = lo.min(s.mean);
                hi = hi.max(s.mean);
                widest = widest.max(s.ci95);
            }
            println!(
                "{:<18} cell means {lo:.3} .. {hi:.3}, widest 95 % CI half-width {widest:.3}",
                metric.key()
            );
        }
        println!();

        // the headline cell: the paper's 10-node segment at 8 trains/h
        let analytic = experiments::headline_numbers(&ScenarioParams::paper_default())
            .repeater_daily_energy
            .value();
        if let Some(headline) = report.results().iter().find(|r| {
            let c = r.cell();
            c.trains_per_hour() == 8.0
                && c.nodes() == 10
                && c.conventional_isd_m() == 500.0
                && (c.train_speed_kmh() - 200.0).abs() < 1e-9
        }) {
            let s = headline.stats(McMetric::RepeaterWhDay);
            println!(
                "headline cell {} (8 trains/h, 200 km/h): repeater {:.3} ± {:.3} Wh/day (95 % CI)",
                headline.cell().index(),
                s.mean,
                s.ci95
            );
            println!(
                "analytic closed form: {analytic:.3} Wh/day -> CI {}",
                if s.ci_covers(analytic) {
                    "covers the analytic value"
                } else {
                    "does NOT cover the analytic value"
                }
            );
        } else {
            println!("(grid has no headline cell at the paper's defaults)");
        }
    }

    eprintln!(
        "simulated {} cell-days in {:.0} ms ({:.0} cell-days/s, workers: {})",
        report.cell_days(),
        elapsed.as_secs_f64() * 1e3,
        report.cell_days() as f64 / elapsed.as_secs_f64().max(1e-9),
        if opts.workers == 0 {
            "auto".to_string()
        } else {
            opts.workers.to_string()
        }
    );
    ExitCode::SUCCESS
}
