//! Monte-Carlo replication throughput: cell-days/s, serial vs parallel.
//!
//! Besides the criterion timings, the bench prints a one-shot wall-clock
//! comparison so the log records the measured cell-days/s and the
//! parallel speedup on this machine. The serial target is ≥ 100
//! cell-days/s on one core (each cell-day is a full event-driven
//! deployment + baseline simulation of a seeded Poisson day).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use corridor_sim::{McEngine, ReplicationPlan, ScenarioGrid};

fn short_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

/// The criterion workload: 4 cells × 5 replications = 20 cell-days per
/// iteration, small enough for the criterion budget.
fn bench_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0])
        .train_speeds_kmh(vec![160.0, 200.0])
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let grid = bench_grid();
    let plan = ReplicationPlan::new(5);
    let mut group = c.benchmark_group("mc20");
    group.bench_function("serial", |b| {
        let engine = McEngine::new().workers(1);
        b.iter(|| {
            engine
                .run_serial(black_box(&grid), black_box(&plan))
                .unwrap()
        })
    });
    for workers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| {
                let engine = McEngine::new().workers(workers);
                b.iter(|| engine.run(black_box(&grid), black_box(&plan)).unwrap())
            },
        );
    }
    group.finish();
}

/// One-shot wall-clock measurement on a screening-scale workload: the
/// 200-cell grid × 5 replications (1000 cell-days), serial then with all
/// cores, recorded in the bench log as cell-days/s and speedup.
fn report_cell_days_per_second(_c: &mut Criterion) {
    let grid = ScenarioGrid::screening_200();
    let plan = ReplicationPlan::new(5);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let started = Instant::now();
    let serial = McEngine::new().workers(1).run_serial(&grid, &plan).unwrap();
    let t_serial = started.elapsed();

    let started = Instant::now();
    let parallel = McEngine::new().workers(cores).run(&grid, &plan).unwrap();
    let t_parallel = started.elapsed();

    assert_eq!(serial, parallel, "parallel run must reproduce serial");
    let days = serial.cell_days() as f64;
    let serial_rate = days / t_serial.as_secs_f64().max(1e-9);
    let parallel_rate = days / t_parallel.as_secs_f64().max(1e-9);
    let speedup = t_serial.as_secs_f64() / t_parallel.as_secs_f64().max(1e-9);
    println!(
        "mc1000 throughput: serial {serial_rate:.0} cell-days/s, \
         parallel({cores} workers) {parallel_rate:.0} cell-days/s -> {speedup:.2}x (identical reports)"
    );
    // recorded, not asserted: a hard wall-clock gate would fail CI on a
    // loaded shared runner without any code defect
    if serial_rate < 100.0 {
        println!(
            "WARNING: serial throughput {serial_rate:.0} cell-days/s is below \
             the 100 cell-days/s target (slow or contended machine?)"
        );
    }
}

criterion_group!(
    name = benches;
    config = short_config();
    targets = bench_serial_vs_parallel, report_cell_days_per_second
);
criterion_main!(benches);
