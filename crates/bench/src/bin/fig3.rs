//! Regenerates the paper's Fig. 3: signal and noise power values for
//! d_ISD = 2400 m and N = 8 low-power repeater nodes.

use corridor_bench::scenario;
use corridor_core::report::TextTable;
use corridor_core::{experiments, ScenarioParams};

fn main() {
    let params: ScenarioParams = scenario();
    let samples = experiments::fig3(&params);

    println!("Fig. 3 — signal and noise power, d_ISD = 2400 m, N = 8\n");
    let mut table = TextTable::new(vec![
        "pos [m]".into(),
        "HP left [dBm]".into(),
        "HP right [dBm]".into(),
        "best LP [dBm]".into(),
        "total signal [dBm]".into(),
        "total noise [dBm]".into(),
    ]);
    for s in samples.iter().step_by(10) {
        let best_lp = s
            .lp_nodes
            .iter()
            .map(|p| p.value())
            .fold(f64::NEG_INFINITY, f64::max);
        table.add_row(vec![
            format!("{:.0}", s.position.value()),
            format!("{:.1}", s.hp_left.value()),
            format!("{:.1}", s.hp_right.value()),
            format!("{best_lp:.1}"),
            format!("{:.1}", s.total_signal.value()),
            format!("{:.1}", s.total_noise.value()),
        ]);
    }
    println!("{}", table.render());

    let min_signal = samples
        .iter()
        .map(|s| s.total_signal.value())
        .fold(f64::INFINITY, f64::min);
    println!("minimum total signal along the track: {min_signal:.1} dBm");
    println!(
        "paper claim: the signal power can be kept above -100 dBm -> {}",
        if min_signal > -100.0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
