//! Repeater placement policies.

use core::fmt;

use corridor_units::Meters;

/// Where the `n` low-power repeater nodes go between two high-power masts
/// at 0 and `isd`.
///
/// Repeaters mount on existing catenary masts, which stand roughly every
/// 50 m — so any position on a 50 m grid is realizable. Policies:
///
/// * [`FixedSpacing`](PlacementPolicy::FixedSpacing) — a cluster centered
///   in the segment with a fixed node-to-node distance (the paper's
///   Table III uses 200 m);
/// * [`EvenlySpaced`](PlacementPolicy::EvenlySpaced) — nodes at
///   `i·isd/(n+1)`, spreading the segment uniformly;
/// * [`Custom`](PlacementPolicy::Custom) — explicit positions.
///
/// # Examples
///
/// ```
/// use corridor_deploy::PlacementPolicy;
/// use corridor_units::Meters;
///
/// let policy = PlacementPolicy::paper_default(); // 200 m fixed spacing
/// let positions = policy.positions(3, Meters::new(1600.0))?;
/// let values: Vec<f64> = positions.iter().map(|p| p.value()).collect();
/// assert_eq!(values, vec![600.0, 800.0, 1000.0]);
/// # Ok::<(), corridor_deploy::PlacementError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PlacementPolicy {
    /// A centered cluster with the given spacing between adjacent nodes.
    FixedSpacing(Meters),
    /// Nodes at `i·isd/(n+1)` for `i = 1..=n`.
    EvenlySpaced,
    /// Explicit positions (must lie strictly inside `(0, isd)`).
    Custom(Vec<Meters>),
}

impl PlacementPolicy {
    /// The paper's Table III policy: fixed 200 m spacing, centered.
    pub fn paper_default() -> Self {
        PlacementPolicy::FixedSpacing(Meters::new(200.0))
    }

    /// Computes the repeater positions for `n` nodes in a segment of length
    /// `isd`.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] if the nodes do not fit (`FixedSpacing`
    /// cluster wider than the segment), if a custom position falls outside
    /// `(0, isd)`, or if a custom list has the wrong length.
    pub fn positions(&self, n: usize, isd: Meters) -> Result<Vec<Meters>, PlacementError> {
        if isd.value() <= 0.0 {
            return Err(PlacementError::InvalidIsd { isd });
        }
        match self {
            PlacementPolicy::FixedSpacing(spacing) => {
                if spacing.value() <= 0.0 {
                    return Err(PlacementError::InvalidSpacing { spacing: *spacing });
                }
                if n == 0 {
                    return Ok(Vec::new());
                }
                let span = *spacing * (n - 1) as f64;
                if span >= isd {
                    return Err(PlacementError::ClusterTooWide { span, isd });
                }
                let first = (isd - span) / 2.0;
                Ok((0..n).map(|i| first + *spacing * i as f64).collect())
            }
            PlacementPolicy::EvenlySpaced => {
                let gap = isd / (n + 1) as f64;
                Ok((1..=n).map(|i| gap * i as f64).collect())
            }
            PlacementPolicy::Custom(positions) => {
                if positions.len() != n {
                    return Err(PlacementError::WrongCount {
                        expected: n,
                        got: positions.len(),
                    });
                }
                for &p in positions {
                    if p.value() <= 0.0 || p >= isd {
                        return Err(PlacementError::OutOfSegment { position: p, isd });
                    }
                }
                Ok(positions.clone())
            }
        }
    }
}

impl Default for PlacementPolicy {
    /// Returns [`PlacementPolicy::paper_default`].
    fn default() -> Self {
        PlacementPolicy::paper_default()
    }
}

/// Error computing repeater positions.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// The inter-site distance is not strictly positive.
    InvalidIsd {
        /// The offending ISD.
        isd: Meters,
    },
    /// The fixed spacing is not strictly positive.
    InvalidSpacing {
        /// The offending spacing.
        spacing: Meters,
    },
    /// A fixed-spacing cluster is wider than the segment.
    ClusterTooWide {
        /// Width of the node cluster.
        span: Meters,
        /// Segment length.
        isd: Meters,
    },
    /// A custom position lies outside the open segment.
    OutOfSegment {
        /// The offending position.
        position: Meters,
        /// Segment length.
        isd: Meters,
    },
    /// A custom list's length does not match the requested node count.
    WrongCount {
        /// Requested number of nodes.
        expected: usize,
        /// Length of the provided list.
        got: usize,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::InvalidIsd { isd } => {
                write!(f, "inter-site distance {isd} is not positive")
            }
            PlacementError::InvalidSpacing { spacing } => {
                write!(f, "node spacing {spacing} is not positive")
            }
            PlacementError::ClusterTooWide { span, isd } => {
                write!(
                    f,
                    "node cluster of width {span} does not fit in segment of {isd}"
                )
            }
            PlacementError::OutOfSegment { position, isd } => {
                write!(
                    f,
                    "position {position} lies outside the open segment (0, {isd})"
                )
            }
            PlacementError::WrongCount { expected, got } => {
                write!(f, "expected {expected} custom positions, got {got}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(positions: &[Meters]) -> Vec<f64> {
        positions.iter().map(|p| p.value()).collect()
    }

    #[test]
    fn fixed_spacing_centered() {
        let p = PlacementPolicy::paper_default();
        // Fig. 3 scenario: 8 nodes, 2400 m -> 500..1900 step 200
        let pos = p.positions(8, Meters::new(2400.0)).unwrap();
        assert_eq!(
            values(&pos),
            vec![500.0, 700.0, 900.0, 1100.0, 1300.0, 1500.0, 1700.0, 1900.0]
        );
    }

    #[test]
    fn single_node_centered() {
        let p = PlacementPolicy::paper_default();
        assert_eq!(
            values(&p.positions(1, Meters::new(1250.0)).unwrap()),
            vec![625.0]
        );
    }

    #[test]
    fn zero_nodes_empty() {
        let p = PlacementPolicy::paper_default();
        assert!(p.positions(0, Meters::new(500.0)).unwrap().is_empty());
        assert!(PlacementPolicy::EvenlySpaced
            .positions(0, Meters::new(500.0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn evenly_spaced_positions() {
        let pos = PlacementPolicy::EvenlySpaced
            .positions(3, Meters::new(1000.0))
            .unwrap();
        assert_eq!(values(&pos), vec![250.0, 500.0, 750.0]);
    }

    #[test]
    fn custom_positions_validated() {
        let ok = PlacementPolicy::Custom(vec![Meters::new(300.0), Meters::new(900.0)]);
        assert_eq!(
            values(&ok.positions(2, Meters::new(1200.0)).unwrap()),
            vec![300.0, 900.0]
        );
        let outside = PlacementPolicy::Custom(vec![Meters::new(1300.0)]);
        assert!(matches!(
            outside.positions(1, Meters::new(1200.0)),
            Err(PlacementError::OutOfSegment { .. })
        ));
        let miscount = PlacementPolicy::Custom(vec![Meters::new(300.0)]);
        assert!(matches!(
            miscount.positions(2, Meters::new(1200.0)),
            Err(PlacementError::WrongCount {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn cluster_must_fit() {
        let p = PlacementPolicy::FixedSpacing(Meters::new(200.0));
        // 6 nodes need 1000 m of span; a 900 m segment cannot host them
        assert!(matches!(
            p.positions(6, Meters::new(900.0)),
            Err(PlacementError::ClusterTooWide { .. })
        ));
    }

    #[test]
    fn invalid_inputs() {
        let p = PlacementPolicy::paper_default();
        assert!(matches!(
            p.positions(1, Meters::ZERO),
            Err(PlacementError::InvalidIsd { .. })
        ));
        let bad = PlacementPolicy::FixedSpacing(Meters::ZERO);
        assert!(matches!(
            bad.positions(1, Meters::new(1000.0)),
            Err(PlacementError::InvalidSpacing { .. })
        ));
    }

    #[test]
    fn positions_sorted_and_inside() {
        for n in 1..=10 {
            for policy in [
                PlacementPolicy::paper_default(),
                PlacementPolicy::EvenlySpaced,
            ] {
                let isd = Meters::new(2650.0);
                let pos = policy.positions(n, isd).unwrap();
                assert_eq!(pos.len(), n);
                for w in pos.windows(2) {
                    assert!(w[0] < w[1]);
                }
                assert!(pos[0].value() > 0.0);
                assert!(pos[n - 1] < isd);
            }
        }
    }

    #[test]
    fn error_messages() {
        let err = PlacementError::WrongCount {
            expected: 3,
            got: 1,
        };
        assert_eq!(err.to_string(), "expected 3 custom positions, got 1");
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<PlacementError>();
    }
}
