//! Capacity criteria for "maintaining the cell's throughput".

use core::fmt;

use corridor_link::{CoverageProfile, ThroughputModel};
use corridor_units::{Db, Meters};

/// What it means for a stretched segment to still "maintain the same data
/// capacity" as the conventional deployment.
///
/// The paper registers the maximum ISD "with which the throughput still
/// matches the peak throughput of 5G NR at an SNR > 29 dB" — i.e. the
/// *minimum* SNR along the track stays at or above 29 dB
/// ([`CoverageCriterion::paper_default`]). Alternative readings are
/// provided for the ablation bench.
///
/// # Examples
///
/// ```
/// use corridor_deploy::{CorridorLayout, CoverageCriterion, LinkBudget};
/// use corridor_units::Meters;
///
/// let budget = LinkBudget::paper_default();
/// let profile = CorridorLayout::conventional(Meters::new(500.0))
///     .coverage_profile(&budget, Meters::new(5.0));
/// assert!(CoverageCriterion::paper_default().is_satisfied(&profile, budget.throughput()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CoverageCriterion {
    /// Minimum SNR along the track at or above the threshold.
    MinSnr(Db),
    /// Peak throughput everywhere: minimum SNR at or above the throughput
    /// model's exact cap crossover (≈29.3 dB for the paper's parameters).
    PeakEverywhere,
    /// Mean spectral efficiency along the track at or above a bps/Hz floor.
    MeanSpectralEfficiency(f64),
    /// The capacity delivered to a train of the given length — the minimum
    /// over train positions of the windowed mean spectral efficiency — at
    /// or above a bps/Hz floor.
    TrainWindowed {
        /// Train length used as the sliding window.
        window: Meters,
        /// Minimum windowed-mean spectral efficiency, bps/Hz.
        min_se: f64,
    },
}

impl CoverageCriterion {
    /// The paper's criterion: minimum SNR ≥ 29 dB.
    pub fn paper_default() -> Self {
        CoverageCriterion::MinSnr(Db::new(29.0))
    }

    /// Evaluates the criterion on a sampled profile.
    pub fn is_satisfied(&self, profile: &CoverageProfile, throughput: &ThroughputModel) -> bool {
        match *self {
            CoverageCriterion::MinSnr(threshold) => {
                profile.min_snr().is_some_and(|snr| snr >= threshold)
            }
            CoverageCriterion::PeakEverywhere => {
                profile.min_snr().is_some_and(|snr| throughput.is_peak(snr))
            }
            CoverageCriterion::MeanSpectralEfficiency(min_se) => profile
                .mean_spectral_efficiency()
                .is_some_and(|se| se >= min_se),
            CoverageCriterion::TrainWindowed { window, min_se } => profile
                .min_windowed_mean_se(window)
                .is_some_and(|se| se >= min_se),
        }
    }
}

impl Default for CoverageCriterion {
    /// Returns [`CoverageCriterion::paper_default`].
    fn default() -> Self {
        CoverageCriterion::paper_default()
    }
}

impl fmt::Display for CoverageCriterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverageCriterion::MinSnr(t) => write!(f, "min SNR ≥ {t}"),
            CoverageCriterion::PeakEverywhere => f.write_str("peak throughput everywhere"),
            CoverageCriterion::MeanSpectralEfficiency(se) => {
                write!(f, "mean SE ≥ {se:.2} bps/Hz")
            }
            CoverageCriterion::TrainWindowed { window, min_se } => {
                write!(f, "train-windowed ({window}) SE ≥ {min_se:.2} bps/Hz")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CorridorLayout, LinkBudget, PlacementPolicy};

    fn profile(isd: f64, n: usize) -> CoverageProfile {
        let layout = if n == 0 {
            CorridorLayout::conventional(Meters::new(isd))
        } else {
            CorridorLayout::with_policy(Meters::new(isd), n, &PlacementPolicy::paper_default())
                .unwrap()
        };
        layout.coverage_profile(&LinkBudget::paper_default(), Meters::new(5.0))
    }

    #[test]
    fn paper_criterion_on_conventional() {
        let thr = ThroughputModel::nr_default();
        let crit = CoverageCriterion::paper_default();
        assert!(crit.is_satisfied(&profile(500.0, 0), &thr));
        assert!(!crit.is_satisfied(&profile(2400.0, 0), &thr));
    }

    #[test]
    fn paper_criterion_on_fig3_scenario() {
        let thr = ThroughputModel::nr_default();
        let crit = CoverageCriterion::paper_default();
        assert!(crit.is_satisfied(&profile(2400.0, 8), &thr));
    }

    #[test]
    fn peak_everywhere_stricter_than_29db() {
        let thr = ThroughputModel::nr_default();
        // exact cap is 29.3 dB: a profile with min SNR between 29.0 and
        // 29.3 satisfies MinSnr(29) but not PeakEverywhere.
        let p = profile(2400.0, 8);
        let min = p.min_snr().unwrap().value();
        if (29.0..29.3).contains(&min) {
            assert!(CoverageCriterion::MinSnr(Db::new(29.0)).is_satisfied(&p, &thr));
            assert!(!CoverageCriterion::PeakEverywhere.is_satisfied(&p, &thr));
        } else {
            // placement changes could move the minimum; the ordering still
            // holds: PeakEverywhere implies MinSnr(29).
            let peak_ok = CoverageCriterion::PeakEverywhere.is_satisfied(&p, &thr);
            let min29_ok = CoverageCriterion::MinSnr(Db::new(29.0)).is_satisfied(&p, &thr);
            assert!(!peak_ok || min29_ok);
        }
    }

    #[test]
    fn mean_se_criterion() {
        let thr = ThroughputModel::nr_default();
        let p = profile(500.0, 0);
        assert!(CoverageCriterion::MeanSpectralEfficiency(5.83).is_satisfied(&p, &thr));
        assert!(!CoverageCriterion::MeanSpectralEfficiency(5.85).is_satisfied(&p, &thr));
    }

    #[test]
    fn train_windowed_criterion_more_forgiving_than_min() {
        let thr = ThroughputModel::nr_default();
        // stretch until the point-wise criterion fails
        let p = profile(2600.0, 8);
        let min_fails = !CoverageCriterion::MinSnr(Db::new(29.0)).is_satisfied(&p, &thr);
        let windowed = CoverageCriterion::TrainWindowed {
            window: Meters::new(400.0),
            min_se: 5.8,
        };
        if min_fails {
            // windowed averaging over 400 m smooths the dip
            assert!(windowed.is_satisfied(&p, &thr));
        }
    }

    #[test]
    fn display() {
        assert_eq!(
            CoverageCriterion::paper_default().to_string(),
            "min SNR ≥ 29.00 dB"
        );
        assert_eq!(
            CoverageCriterion::PeakEverywhere.to_string(),
            "peak throughput everywhere"
        );
    }
}
