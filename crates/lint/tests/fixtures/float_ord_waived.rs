//! Fixture: a reasoned waiver suppresses the float-ord rule.

pub fn ordering(a: f64, b: f64) -> Option<core::cmp::Ordering> {
    // corridor-lint: allow(float-ord, reason = "inputs are clamped to finite ranges upstream")
    a.partial_cmp(&b)
}
