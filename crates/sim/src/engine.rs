//! Serial and parallel sweep execution.

use corridor_core::{energy, EnergyStrategy, ScenarioError};
use corridor_solar::{sizing, DailyLoadProfile};
use corridor_traffic::{ActivityTimeline, TrackSection};
use corridor_units::Watts;
use rayon::prelude::*;

use crate::{CellResult, PvOutcome, ScenarioCell, ScenarioGrid, SweepReport};

/// Executes a [`ScenarioGrid`], cell by cell, serially or on a worker
/// pool.
///
/// Each cell is evaluated independently (energy split for the three
/// strategies, savings versus the cell's conventional baseline, and —
/// unless disabled — the off-grid PV sizing for the cell's climate), so
/// the parallel path produces results identical to the serial one, in the
/// same deterministic grid order.
///
/// # Examples
///
/// ```
/// use corridor_core::EnergyStrategy;
/// use corridor_sim::{ScenarioGrid, SweepEngine};
///
/// let engine = SweepEngine::new().workers(2).pv_sizing(false);
/// let report = engine.run(&ScenarioGrid::new()).unwrap();
/// // the paper's 74 % sleep-mode saving, via the sweep path
/// let saving = report.results()[0].savings(EnergyStrategy::SleepModeRepeaters);
/// assert!((saving - 0.74).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepEngine {
    workers: usize,
    pv_sizing: bool,
}

impl SweepEngine {
    /// An engine with automatic worker count and PV sizing enabled.
    pub fn new() -> Self {
        SweepEngine {
            workers: 0,
            pv_sizing: true,
        }
    }

    /// Sets the worker count; `0` means automatic (machine parallelism).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables or disables the per-cell PV sizing (the expensive step:
    /// three seeded weather years per candidate configuration).
    #[must_use]
    pub fn pv_sizing(mut self, enabled: bool) -> Self {
        self.pv_sizing = enabled;
        self
    }

    /// Expands the grid and evaluates every cell on the worker pool.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the grid expansion rejects a cell's
    /// parameters.
    pub fn run(&self, grid: &ScenarioGrid) -> Result<SweepReport, ScenarioError> {
        let cells = grid.expand()?;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.workers)
            .build()
            .expect("shim pool build is infallible");
        let results: Vec<CellResult> =
            pool.install(|| cells.par_iter().map(|cell| self.evaluate(cell)).collect());
        Ok(SweepReport::new(results))
    }

    /// Expands the grid and evaluates every cell on the calling thread —
    /// the reference path the parallel results are checked against.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the grid expansion rejects a cell's
    /// parameters.
    pub fn run_serial(&self, grid: &ScenarioGrid) -> Result<SweepReport, ScenarioError> {
        let cells = grid.expand()?;
        Ok(SweepReport::new(
            cells.iter().map(|cell| self.evaluate(cell)).collect(),
        ))
    }

    /// Evaluates one cell.
    pub fn evaluate(&self, cell: &ScenarioCell) -> CellResult {
        let params = cell.params();
        let baseline = energy::conventional_baseline(params);
        let at =
            |strategy| energy::average_power_per_km(params, cell.nodes(), cell.isd(), strategy);
        let pv = if self.pv_sizing {
            self.size_pv(cell)
        } else {
            PvOutcome::Skipped
        };
        CellResult::new(
            cell.clone(),
            baseline,
            at(EnergyStrategy::ContinuousRepeaters),
            at(EnergyStrategy::SleepModeRepeaters),
            at(EnergyStrategy::SolarPoweredRepeaters),
            pv,
        )
    }

    /// Sizes the off-grid PV system of one service repeater in this cell:
    /// the node sleeps through the night pause and serves train bursts
    /// during the service window (the paper's Table IV methodology,
    /// generalized to the cell's timetable and equipment).
    fn size_pv(&self, cell: &ScenarioCell) -> PvOutcome {
        let params = cell.params();
        let lp = params.lp_node();
        let section = TrackSection::around(cell.isd() / 2.0, params.lp_spacing());
        let active_h = ActivityTimeline::for_section(&section, &params.timetable().passes())
            .total_active_hours()
            .value();
        let night_h = (24.0 - params.timetable().service_window().value())
            .round()
            .clamp(0.0, 23.0);
        let day_window_h = 24.0 - night_h;
        let day_avg_w = (lp.full_load_power().value() * active_h
            + lp.p_sleep().value() * (day_window_h - active_h).max(0.0))
            / day_window_h;
        let load = DailyLoadProfile::repeater_profile(
            lp.p_sleep(),
            Watts::new(day_avg_w),
            night_h as usize,
        );
        match sizing::size_for_zero_downtime(
            cell.location().clone(),
            load,
            &sizing::SizingOptions::paper_default(),
        ) {
            Some(fit) => PvOutcome::Sized {
                pv_wp: fit.pv.peak().value(),
                battery_wh: fit.battery_capacity.value(),
                days_full_pct: fit.mean_full_battery_fraction() * 100.0,
            },
            None => PvOutcome::Unsolvable,
        }
    }
}

impl Default for SweepEngine {
    /// Returns [`SweepEngine::new`].
    fn default() -> Self {
        SweepEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_core::{experiments, ScenarioParams};
    use corridor_solar::climate;

    #[test]
    fn paper_cell_reproduces_headline_savings() {
        let report = SweepEngine::new()
            .workers(1)
            .pv_sizing(false)
            .run(&ScenarioGrid::new())
            .unwrap();
        let h = experiments::headline_numbers(&ScenarioParams::paper_default());
        let r = &report.results()[0];
        assert!((r.savings(EnergyStrategy::SleepModeRepeaters) - h.savings_sleep_10).abs() < 1e-12);
        assert!(
            (r.savings(EnergyStrategy::SolarPoweredRepeaters) - h.savings_solar_10).abs() < 1e-12
        );
    }

    #[test]
    fn paper_cell_pv_sizing_matches_table4_berlin() {
        // default grid = Berlin climate; Table IV: 600 Wp / 1440 Wh
        let report = SweepEngine::new()
            .workers(1)
            .run(&ScenarioGrid::new())
            .unwrap();
        match report.results()[0].pv() {
            PvOutcome::Sized {
                pv_wp,
                battery_wh,
                days_full_pct,
            } => {
                assert_eq!(pv_wp, 600.0);
                assert_eq!(battery_wh, 1440.0);
                assert!(days_full_pct > 85.0);
            }
            other => panic!("expected sized outcome, got {other:?}"),
        }
    }

    #[test]
    fn heavy_load_profile_is_unsolvable() {
        // a flat 650 W onboard-relay "repeater" cannot be solar-sized
        let grid = ScenarioGrid::new().power_profiles(vec![crate::PowerProfile::custom(
            "flat-650w",
            corridor_power::catalog::high_power_mast(),
            corridor_power::catalog::onboard_relay(),
        )]);
        let report = SweepEngine::new().workers(1).run(&grid).unwrap();
        assert_eq!(report.results()[0].pv(), PvOutcome::Unsolvable);
    }

    #[test]
    fn parallel_matches_serial_on_a_mixed_grid() {
        let grid = ScenarioGrid::new()
            .trains_per_hour(vec![4.0, 8.0])
            .train_speeds_kmh(vec![160.0, 200.0])
            .locations(vec![climate::madrid(), climate::berlin()]);
        let engine = SweepEngine::new().pv_sizing(false);
        let serial = engine.run_serial(&grid).unwrap();
        let parallel = engine.workers(4).run(&grid).unwrap();
        assert_eq!(serial.results(), parallel.results());
    }

    #[test]
    fn strategy_ordering_holds_across_the_screening_grid() {
        let report = SweepEngine::new()
            .pv_sizing(false)
            .run(&ScenarioGrid::screening_200())
            .unwrap();
        assert_eq!(report.len(), 200);
        for r in report.results() {
            let c = r.split(EnergyStrategy::ContinuousRepeaters).total();
            let s = r.split(EnergyStrategy::SleepModeRepeaters).total();
            let z = r.split(EnergyStrategy::SolarPoweredRepeaters).total();
            assert!(c > s, "{}", r.cell());
            assert!(s > z, "{}", r.cell());
        }
    }
}
