//! Validated fractional quantities.

use core::fmt;

/// A traffic load expressed as a fraction of the maximum possible load.
///
/// The EARTH power model (paper eq. (3)) treats load χ as a value in
/// `[0, 1]`; this type enforces that invariant at construction.
///
/// # Examples
///
/// ```
/// use corridor_units::LoadFraction;
/// let full = LoadFraction::FULL;
/// assert_eq!(full.value(), 1.0);
/// let half = LoadFraction::new(0.5)?;
/// assert_eq!(half.value(), 0.5);
/// assert!(LoadFraction::new(1.5).is_err());
/// # Ok::<(), corridor_units::LoadFractionError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LoadFraction(f64);

impl LoadFraction {
    /// Zero load (no traffic). Note that in the EARTH model zero load maps
    /// to *sleep* power, not to `P0`.
    pub const ZERO: LoadFraction = LoadFraction(0.0);
    /// Full load (χ = 1).
    pub const FULL: LoadFraction = LoadFraction(1.0);

    /// Creates a load fraction, validating `0.0 <= value <= 1.0`.
    ///
    /// # Errors
    ///
    /// Returns [`LoadFractionError`] if `value` is outside `[0, 1]` or NaN.
    pub fn new(value: f64) -> Result<Self, LoadFractionError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            Err(LoadFractionError { value })
        } else {
            Ok(LoadFraction(value))
        }
    }

    /// Creates a load fraction, clamping `value` into `[0, 1]`
    /// (NaN becomes zero).
    #[inline]
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            LoadFraction(0.0)
        } else {
            LoadFraction(value.clamp(0.0, 1.0))
        }
    }

    /// Returns the raw fraction in `[0, 1]`.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Total order over the raw value, as [`f64::total_cmp`]: NaN sorts
    /// after `+inf`, so comparison-based searches order NaN last instead
    /// of panicking or silently dropping elements.
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// True if this is exactly zero load (the sleep-eligible state).
    #[inline]
    pub fn is_idle(self) -> bool {
        self.0 == 0.0
    }
}

impl fmt::Display for LoadFraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} %", self.0 * 100.0)
    }
}

/// Error returned when constructing a [`LoadFraction`] outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadFractionError {
    value: f64,
}

impl LoadFractionError {
    /// The offending value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl fmt::Display for LoadFractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "load fraction {} is outside [0, 1]", self.value)
    }
}

impl std::error::Error for LoadFractionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_range_accepted() {
        for v in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(LoadFraction::new(v).unwrap().value(), v);
        }
    }

    #[test]
    fn invalid_rejected() {
        assert!(LoadFraction::new(-0.1).is_err());
        assert!(LoadFraction::new(1.1).is_err());
        assert!(LoadFraction::new(f64::NAN).is_err());
        let err = LoadFraction::new(2.0).unwrap_err();
        assert_eq!(err.value(), 2.0);
        assert_eq!(err.to_string(), "load fraction 2 is outside [0, 1]");
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(LoadFraction::saturating(-1.0), LoadFraction::ZERO);
        assert_eq!(LoadFraction::saturating(2.0), LoadFraction::FULL);
        assert_eq!(LoadFraction::saturating(f64::NAN), LoadFraction::ZERO);
        assert_eq!(LoadFraction::saturating(0.3).value(), 0.3);
    }

    #[test]
    fn idle_detection() {
        assert!(LoadFraction::ZERO.is_idle());
        assert!(!LoadFraction::FULL.is_idle());
        assert!(!LoadFraction::new(1e-9).unwrap().is_idle());
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<LoadFractionError>();
    }

    #[test]
    fn display_percent() {
        assert_eq!(LoadFraction::new(0.0285).unwrap().to_string(), "2.9 %");
    }
}
