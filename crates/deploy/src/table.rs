//! The ISD table: maximum inter-site distance per repeater count.

use core::fmt;

use corridor_units::Meters;

/// Maximum achievable inter-site distance for each repeater count
/// `n = 0, 1, 2, …`.
///
/// Two sources of truth exist side by side:
///
/// * [`IsdTable::paper`] — the sequence published in the paper's Section V
///   (conventional 500 m; then 1250…2650 m for 1–10 nodes), used to
///   regenerate Fig. 4 on identical footing;
/// * [`IsdOptimizer::sweep`](crate::IsdOptimizer::sweep) — the sequence
///   computed by this crate's model, which matches the paper at n = 1, 2
///   and tracks it within ~5–15 % beyond (the paper's exact placement and
///   frequency are unstated).
///
/// # Examples
///
/// ```
/// use corridor_deploy::IsdTable;
/// use corridor_units::Meters;
///
/// let table = IsdTable::paper();
/// assert_eq!(table.isd_for(0), Some(Meters::new(500.0)));
/// assert_eq!(table.isd_for(8), Some(Meters::new(2400.0)));
/// assert_eq!(table.max_nodes(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IsdTable {
    max_isd_by_n: Vec<Option<Meters>>,
}

impl IsdTable {
    /// The paper's published sequence: 500 m conventional, then
    /// {1250, 1450, 1600, 1800, 1950, 2100, 2250, 2400, 2500, 2650} m for
    /// one to ten repeater nodes.
    pub fn paper() -> Self {
        let isds = [
            500.0, 1250.0, 1450.0, 1600.0, 1800.0, 1950.0, 2100.0, 2250.0, 2400.0, 2500.0, 2650.0,
        ];
        IsdTable {
            max_isd_by_n: isds.iter().map(|&v| Some(Meters::new(v))).collect(),
        }
    }

    /// Builds a table from per-`n` results (index = node count).
    pub fn from_max_isds(max_isd_by_n: Vec<Option<Meters>>) -> Self {
        IsdTable { max_isd_by_n }
    }

    /// Maximum ISD for `n` repeater nodes, if solvable.
    pub fn isd_for(&self, n: usize) -> Option<Meters> {
        self.max_isd_by_n.get(n).copied().flatten()
    }

    /// The largest node count in the table.
    pub fn max_nodes(&self) -> usize {
        self.max_isd_by_n.len().saturating_sub(1)
    }

    /// Iterates `(n, max_isd)` pairs for solvable entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Meters)> + '_ {
        self.max_isd_by_n
            .iter()
            .enumerate()
            .filter_map(|(n, isd)| isd.map(|i| (n, i)))
    }

    /// The extra ISD gained by the `n`-th node over the `(n−1)`-th.
    pub fn marginal_gain(&self, n: usize) -> Option<Meters> {
        if n == 0 {
            return None;
        }
        Some(self.isd_for(n)? - self.isd_for(n - 1)?)
    }

    /// The smallest node count whose ISD reaches at least `target`, if any.
    pub fn nodes_for_isd(&self, target: Meters) -> Option<usize> {
        self.iter().find(|(_, isd)| *isd >= target).map(|(n, _)| n)
    }
}

impl fmt::Display for IsdTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:>5}  {:>10}", "nodes", "max ISD")?;
        for (n, isd) in self.iter() {
            writeln!(f, "{n:>5}  {:>10.0} m", isd.value())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_values() {
        let t = IsdTable::paper();
        let expected = [
            500.0, 1250.0, 1450.0, 1600.0, 1800.0, 1950.0, 2100.0, 2250.0, 2400.0, 2500.0, 2650.0,
        ];
        for (n, &isd) in expected.iter().enumerate() {
            assert_eq!(t.isd_for(n), Some(Meters::new(isd)), "n={n}");
        }
        assert_eq!(t.max_nodes(), 10);
        assert_eq!(t.isd_for(11), None);
    }

    #[test]
    fn paper_table_is_monotone() {
        let t = IsdTable::paper();
        let isds: Vec<Meters> = t.iter().map(|(_, isd)| isd).collect();
        for w in isds.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn marginal_gains() {
        let t = IsdTable::paper();
        assert_eq!(t.marginal_gain(0), None);
        assert_eq!(t.marginal_gain(1), Some(Meters::new(750.0)));
        assert_eq!(t.marginal_gain(2), Some(Meters::new(200.0)));
        assert_eq!(t.marginal_gain(9), Some(Meters::new(100.0)));
    }

    #[test]
    fn nodes_for_isd_lookup() {
        let t = IsdTable::paper();
        assert_eq!(t.nodes_for_isd(Meters::new(500.0)), Some(0));
        assert_eq!(t.nodes_for_isd(Meters::new(1600.0)), Some(3));
        assert_eq!(t.nodes_for_isd(Meters::new(1601.0)), Some(4));
        assert_eq!(t.nodes_for_isd(Meters::new(3000.0)), None);
    }

    #[test]
    fn unsolvable_entries_skipped() {
        let t = IsdTable::from_max_isds(vec![
            Some(Meters::new(500.0)),
            None,
            Some(Meters::new(1450.0)),
        ]);
        assert_eq!(t.isd_for(1), None);
        assert_eq!(t.iter().count(), 2);
        assert_eq!(t.marginal_gain(2), None); // n=1 missing
    }

    #[test]
    fn display_renders_rows() {
        let s = IsdTable::paper().to_string();
        assert!(s.contains("nodes"));
        assert!(s.contains("2650 m"));
    }
}
