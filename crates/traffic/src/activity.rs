//! Merged activity timelines for a node over a day.

use corridor_units::{Hours, Seconds};

use crate::{TrackSection, TrainPass, WakeController};

/// The intervals during which a node is at full load over one day.
///
/// Built from a coverage section and the day's train passes; overlapping
/// intervals (dense traffic or long sections) are merged so the total never
/// double-counts.
///
/// # Examples
///
/// ```
/// use corridor_traffic::{ActivityTimeline, Timetable, TrackSection};
/// use corridor_units::Meters;
///
/// let section = TrackSection::around(Meters::new(600.0), Meters::new(200.0));
/// let activity = ActivityTimeline::for_section(&section, &Timetable::paper_default().passes());
/// assert_eq!(activity.len(), 152);
/// // 152 trains × 10.8 s = 1641.6 s ≈ 0.456 h of full load per day
/// assert!((activity.total_active_hours().value() - 0.456).abs() < 0.001);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ActivityTimeline {
    intervals: Vec<(Seconds, Seconds)>,
}

impl ActivityTimeline {
    /// Builds the timeline of a node serving `section` for the given
    /// passes. Intervals are sorted and merged.
    pub fn for_section(section: &TrackSection, passes: &[TrainPass]) -> Self {
        Self::from_intervals(passes.iter().map(|p| section.occupancy(p)))
    }

    /// Builds the timeline with a sleep controller's wake lead and delay
    /// applied to every occupancy interval.
    pub fn for_section_with_wake(
        section: &TrackSection,
        passes: &[TrainPass],
        wake: &WakeController,
    ) -> Self {
        Self::from_intervals(
            passes
                .iter()
                .map(|p| wake.powered_interval(section.occupancy(p))),
        )
    }

    /// Builds a timeline from raw `(start, end)` intervals; inverted
    /// intervals are discarded, the rest sorted and merged.
    pub fn from_intervals<I: IntoIterator<Item = (Seconds, Seconds)>>(intervals: I) -> Self {
        let mut raw: Vec<(Seconds, Seconds)> =
            intervals.into_iter().filter(|(s, e)| e > s).collect();
        raw.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut merged: Vec<(Seconds, Seconds)> = Vec::with_capacity(raw.len());
        for (start, end) in raw {
            match merged.last_mut() {
                Some((_, last_end)) if start <= *last_end => {
                    *last_end = last_end.max(end);
                }
                _ => merged.push((start, end)),
            }
        }
        ActivityTimeline { intervals: merged }
    }

    /// The merged busy intervals, sorted by start time.
    pub fn intervals(&self) -> &[(Seconds, Seconds)] {
        &self.intervals
    }

    /// Number of distinct busy intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True if the node is never active.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total full-load time.
    pub fn total_active(&self) -> Seconds {
        self.intervals.iter().map(|(s, e)| *e - *s).sum()
    }

    /// Total full-load time in hours (the input to a
    /// `DutyCycle`-style energy computation in `corridor_power`).
    pub fn total_active_hours(&self) -> Hours {
        self.total_active().hours()
    }

    /// True if the node is active at time `t`.
    pub fn is_active_at(&self, t: Seconds) -> bool {
        self.intervals.iter().any(|(s, e)| *s <= t && t <= *e)
    }

    /// Total active time within the clock window `[from, to]` (used to
    /// build hourly load profiles for the solar simulation).
    pub fn active_within(&self, from: Seconds, to: Seconds) -> Seconds {
        self.intervals
            .iter()
            .map(|(s, e)| {
                let lo = s.max(from);
                let hi = e.min(to);
                if hi > lo {
                    hi - lo
                } else {
                    Seconds::ZERO
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Timetable, Train};
    use corridor_units::Meters;

    fn sec(v: f64) -> Seconds {
        Seconds::new(v)
    }

    #[test]
    fn paper_hp_mast_activity() {
        // HP mast section = one ISD of 500 m: 152 × 16.2 s = 0.684 h/day
        let section = TrackSection::new(Meters::ZERO, Meters::new(500.0));
        let activity =
            ActivityTimeline::for_section(&section, &Timetable::paper_default().passes());
        assert!((activity.total_active_hours().value() - 0.684).abs() < 0.001);
        // full-load share of the day: 2.85 %
        let frac = activity.total_active().value() / 86_400.0;
        assert!((frac - 0.0285).abs() < 0.0001, "got {frac}");
    }

    #[test]
    fn paper_extended_isd_activity() {
        let section = TrackSection::new(Meters::ZERO, Meters::new(2650.0));
        let activity =
            ActivityTimeline::for_section(&section, &Timetable::paper_default().passes());
        let frac = activity.total_active().value() / 86_400.0;
        assert!((frac - 0.0966).abs() < 0.0002, "got {frac}");
    }

    #[test]
    fn merging_overlapping_intervals() {
        let t = ActivityTimeline::from_intervals([
            (sec(0.0), sec(10.0)),
            (sec(5.0), sec(20.0)),
            (sec(30.0), sec(40.0)),
            (sec(40.0), sec(45.0)), // touching intervals merge
        ]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_active(), sec(35.0));
        assert_eq!(t.intervals()[0], (sec(0.0), sec(20.0)));
        assert_eq!(t.intervals()[1], (sec(30.0), sec(45.0)));
    }

    #[test]
    fn inverted_intervals_discarded() {
        let t = ActivityTimeline::from_intervals([(sec(10.0), sec(5.0)), (sec(0.0), sec(1.0))]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.total_active(), sec(1.0));
    }

    #[test]
    fn unsorted_input_handled() {
        let t = ActivityTimeline::from_intervals([
            (sec(100.0), sec(110.0)),
            (sec(0.0), sec(10.0)),
            (sec(50.0), sec(60.0)),
        ]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.intervals()[0].0, sec(0.0));
        assert_eq!(t.intervals()[2].0, sec(100.0));
    }

    #[test]
    fn activity_queries() {
        let t = ActivityTimeline::from_intervals([(sec(10.0), sec(20.0))]);
        assert!(t.is_active_at(sec(15.0)));
        assert!(t.is_active_at(sec(10.0)));
        assert!(!t.is_active_at(sec(25.0)));
        assert_eq!(t.active_within(sec(0.0), sec(15.0)), sec(5.0));
        assert_eq!(t.active_within(sec(12.0), sec(18.0)), sec(6.0));
        assert_eq!(t.active_within(sec(30.0), sec(40.0)), Seconds::ZERO);
    }

    #[test]
    fn empty_timeline() {
        let t = ActivityTimeline::default();
        assert!(t.is_empty());
        assert_eq!(t.total_active(), Seconds::ZERO);
        assert!(!t.is_active_at(sec(0.0)));
    }

    #[test]
    fn hourly_sums_equal_total() {
        let section = TrackSection::around(Meters::new(600.0), Meters::new(200.0));
        let t = ActivityTimeline::for_section(&section, &Timetable::paper_default().passes());
        let mut hourly_sum = Seconds::ZERO;
        for h in 0..24 {
            hourly_sum += t.active_within(sec(h as f64 * 3600.0), sec((h + 1) as f64 * 3600.0));
        }
        assert!((hourly_sum.value() - t.total_active().value()).abs() < 1e-6);
    }

    #[test]
    fn slow_short_trains_occupy_less() {
        let fast = Timetable::paper_default();
        let slow_train = Train::new(
            Meters::new(200.0),
            corridor_units::KilometersPerHour::new(100.0).meters_per_second(),
        );
        let slow = Timetable::new(8.0, Hours::new(19.0), Hours::new(5.0).seconds(), slow_train);
        let section = TrackSection::new(Meters::ZERO, Meters::new(500.0));
        let fast_total = ActivityTimeline::for_section(&section, &fast.passes()).total_active();
        let slow_total = ActivityTimeline::for_section(&section, &slow.passes()).total_active();
        // slower trains spend longer in the section despite being shorter
        assert!(slow_total > fast_total);
    }

    #[test]
    fn nan_intervals_are_discarded_not_panicked() {
        // regression: the interval sort used partial_cmp + expect, which
        // panicked on NaN start times. NaN endpoints fail the `end > start`
        // filter (all NaN comparisons are false), so such intervals drop
        // out before the sort, and total_cmp keeps the rest ordered.
        let activity = ActivityTimeline::from_intervals([
            (sec(f64::NAN), sec(5.0)),
            (sec(1.0), sec(f64::NAN)),
            (sec(f64::NAN), sec(f64::NAN)),
            (sec(2.0), sec(4.0)),
        ]);
        assert_eq!(activity.intervals(), &[(sec(2.0), sec(4.0))]);
        assert_eq!(activity.total_active(), sec(2.0));
    }
}
