//! Property-based tests for the scenario-sweep engine.

use corridor_core::{experiments, EnergyStrategy, ScenarioParams};
use corridor_sim::{PowerProfile, ScenarioGrid, SweepEngine};
use corridor_solar::climate;
use proptest::prelude::*;

/// Candidate pools the random grids draw their axes from.
const TPH: [f64; 4] = [2.0, 4.0, 8.0, 12.0];
const SPEEDS: [f64; 4] = [120.0, 160.0, 200.0, 250.0];
const LENGTHS: [f64; 3] = [200.0, 400.0, 600.0];
const SPACINGS: [f64; 3] = [150.0, 200.0, 250.0];
const ISDS: [f64; 3] = [400.0, 500.0, 600.0];

fn take<const N: usize>(pool: [f64; N], count: usize) -> Vec<f64> {
    pool.iter().copied().take(count.max(1)).collect()
}

proptest! {
    /// Grid expansion yields exactly the product of the axis lengths, and
    /// cell indices are the contiguous range `0..len`.
    #[test]
    fn expansion_count_is_axis_product(
        n_tph in 1usize..=4,
        n_speed in 1usize..=4,
        n_length in 1usize..=3,
        n_spacing in 1usize..=3,
        n_isd in 1usize..=3,
        n_profile in 1usize..=2,
        n_location in 1usize..=2,
    ) {
        let profiles = [PowerProfile::paper(), PowerProfile::earth_fit()];
        let locations = [climate::madrid(), climate::berlin()];
        let grid = ScenarioGrid::new()
            .trains_per_hour(take(TPH, n_tph))
            .train_speeds_kmh(take(SPEEDS, n_speed))
            .train_lengths_m(take(LENGTHS, n_length))
            .lp_spacings_m(take(SPACINGS, n_spacing))
            .conventional_isds_m(take(ISDS, n_isd))
            .power_profiles(profiles[..n_profile].to_vec())
            .locations(locations[..n_location].to_vec());
        let expected = n_tph * n_speed * n_length * n_spacing * n_isd * n_profile * n_location;
        prop_assert_eq!(grid.len(), expected);
        let cells = grid.expand().unwrap();
        prop_assert_eq!(cells.len(), expected);
        for (i, cell) in cells.iter().enumerate() {
            prop_assert_eq!(cell.index(), i);
        }
    }

    /// The parallel run is a permutation-invariant match of the serial
    /// run: whatever order the workers pick cells in, the report holds
    /// identical results in identical grid order.
    #[test]
    fn parallel_matches_serial(
        n_tph in 1usize..=3,
        n_speed in 1usize..=3,
        workers in 2usize..=8,
        nodes in 1usize..=10,
    ) {
        let grid = ScenarioGrid::new()
            .trains_per_hour(take(TPH, n_tph))
            .train_speeds_kmh(take(SPEEDS, n_speed))
            .repeater_nodes(nodes)
            .unwrap();
        let engine = SweepEngine::new().pv_sizing(false);
        let serial = engine.run_serial(&grid).unwrap();
        let parallel = engine.workers(workers).run(&grid).unwrap();
        prop_assert_eq!(serial.results(), parallel.results());
        prop_assert_eq!(serial.to_csv(), parallel.to_csv());
    }

    /// Savings fractions stay within the physically meaningful window on
    /// random cells.
    #[test]
    fn savings_are_fractions(
        tph in 1.0..16.0f64,
        speed in 80.0..320.0f64,
        nodes in 1usize..=10,
    ) {
        let grid = ScenarioGrid::new()
            .trains_per_hour(vec![tph])
            .train_speeds_kmh(vec![speed])
            .repeater_nodes(nodes)
            .unwrap();
        let report = SweepEngine::new().workers(1).pv_sizing(false).run(&grid).unwrap();
        for strategy in [
            EnergyStrategy::ContinuousRepeaters,
            EnergyStrategy::SleepModeRepeaters,
            EnergyStrategy::SolarPoweredRepeaters,
        ] {
            let s = report.results()[0].savings(strategy);
            prop_assert!((-1.0..1.0).contains(&s), "savings {s} for {strategy:?}");
        }
    }
}

/// A degenerate one-cell grid reproduces the `paper_default()` headline
/// numbers exactly (not approximately: the same code path, the same
/// floats).
#[test]
fn one_cell_grid_reproduces_paper_headline_exactly() {
    let report = SweepEngine::new()
        .workers(1)
        .pv_sizing(false)
        .run(&ScenarioGrid::new())
        .unwrap();
    let r = &report.results()[0];
    let h = experiments::headline_numbers(&ScenarioParams::paper_default());
    assert_eq!(
        r.savings(EnergyStrategy::SleepModeRepeaters),
        h.savings_sleep_10
    );
    assert_eq!(
        r.savings(EnergyStrategy::SolarPoweredRepeaters),
        h.savings_solar_10
    );

    let one_node = SweepEngine::new()
        .workers(1)
        .pv_sizing(false)
        .run(&ScenarioGrid::new().repeater_nodes(1).unwrap())
        .unwrap();
    let r1 = &one_node.results()[0];
    assert_eq!(
        r1.savings(EnergyStrategy::SleepModeRepeaters),
        h.savings_sleep_1
    );
    assert_eq!(
        r1.savings(EnergyStrategy::SolarPoweredRepeaters),
        h.savings_solar_1
    );
}
