//! Inline waiver directives.
//!
//! A genuinely safe site suppresses a rule with a comment on the
//! flagged line or on the line directly above it. The directive names
//! the rule and *must* carry a reason — the reason string is the code
//! reviewer's record of why the invariant holds at this site, and the
//! pass fails the build on a waiver without one. Directives are parsed
//! only out of comments (never string literals), so quoting the syntax
//! in an error message cannot waive anything.
//!
//! Syntax (one directive per comment): a line comment holding the
//! `corridor-lint` marker, a colon, then
//! `allow(<rule-id>, reason = "<why this is safe>")`. The full form is
//! spelled out in `docs/lints.md` — deliberately not here, because the
//! pass scans its own sources and a verbatim directive in a doc
//! comment would register as a real (and unused) waiver.

use crate::rules::Rule;
use crate::sanitize::Comment;

/// The directive marker. Built from two halves so the engine's own
/// sources never contain the complete marker outside a real comment.
fn marker() -> String {
    let mut m = String::from("corridor");
    m.push_str("-lint:");
    m
}

/// One parsed waiver directive.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based line the directive comment starts on.
    pub line: usize,
    /// The rule id exactly as written in the directive.
    pub rule_id: String,
    /// The parsed rule, when the id is known.
    pub rule: Option<Rule>,
    /// The reason string, when present and non-empty.
    pub reason: Option<String>,
    /// Whether the directive itself parsed as `allow(...)`.
    pub well_formed: bool,
}

impl Waiver {
    /// Whether this waiver suppresses `rule` on `line` (the directive
    /// covers its own line and the line immediately below it).
    pub fn covers(&self, rule: Rule, line: usize) -> bool {
        self.rule == Some(rule)
            && self.reason.is_some()
            && self.well_formed
            && (line == self.line || line == self.line + 1)
    }
}

/// Extracts every waiver directive from a file's comments.
pub fn parse_waivers(comments: &[Comment]) -> Vec<Waiver> {
    let marker = marker();
    let mut waivers = Vec::new();
    for comment in comments {
        let Some(at) = comment.text.find(&marker) else {
            continue;
        };
        waivers.push(parse_directive(
            comment.line,
            comment.text[at + marker.len()..].trim_start(),
        ));
    }
    waivers
}

/// Parses the text following the marker: `allow(<rule>, reason = "…")`.
fn parse_directive(line: usize, rest: &str) -> Waiver {
    let malformed = |rule_id: String| Waiver {
        line,
        rule_id,
        rule: None,
        reason: None,
        well_formed: false,
    };
    let Some(body) = rest.strip_prefix("allow(") else {
        return malformed(String::new());
    };
    let Some(close) = body.rfind(')') else {
        return malformed(String::new());
    };
    let body = &body[..close];
    let (rule_id, tail) = match body.split_once(',') {
        Some((id, tail)) => (id.trim().to_string(), tail.trim()),
        None => (body.trim().to_string(), ""),
    };
    let reason = tail
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim_start)
        .and_then(parse_quoted)
        .filter(|r| !r.is_empty());
    Waiver {
        line,
        rule: Rule::parse(&rule_id),
        rule_id,
        reason,
        well_formed: true,
    }
}

/// Extracts the contents of a double-quoted string (no escape
/// processing — reasons are prose).
fn parse_quoted(text: &str) -> Option<String> {
    let body = text.strip_prefix('"')?;
    let end = body.rfind('"')?;
    Some(body[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitize::sanitize;

    fn waivers_of(src: &str) -> Vec<Waiver> {
        parse_waivers(&sanitize(src).comments)
    }

    #[test]
    fn parses_rule_and_reason() {
        let src =
            "// corridor-lint: allow(no-panic, reason = \"String sink is Ok-only\")\nx.unwrap();\n";
        let ws = waivers_of(src);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rule, Some(Rule::NoPanic));
        assert_eq!(ws[0].reason.as_deref(), Some("String sink is Ok-only"));
        assert!(ws[0].covers(Rule::NoPanic, 2));
        assert!(!ws[0].covers(Rule::NoPanic, 3));
        assert!(!ws[0].covers(Rule::FloatOrd, 2));
    }

    #[test]
    fn missing_reason_is_recorded_and_does_not_cover() {
        let src = "// corridor-lint: allow(no-panic)\nx.unwrap();\n";
        let ws = waivers_of(src);
        assert_eq!(ws.len(), 1);
        assert!(ws[0].reason.is_none());
        assert!(!ws[0].covers(Rule::NoPanic, 2));
    }

    #[test]
    fn unknown_rule_is_recorded() {
        let src = "// corridor-lint: allow(no-such-rule, reason = \"x\")\n";
        let ws = waivers_of(src);
        assert_eq!(ws.len(), 1);
        assert!(ws[0].rule.is_none());
        assert_eq!(ws[0].rule_id, "no-such-rule");
    }

    #[test]
    fn empty_reason_counts_as_missing() {
        let src = "// corridor-lint: allow(no-panic, reason = \"\")\n";
        let ws = waivers_of(src);
        assert!(ws[0].reason.is_none());
    }

    #[test]
    fn malformed_directive_is_flagged_not_ignored() {
        let src = "// corridor-lint: allowing things\n";
        let ws = waivers_of(src);
        assert_eq!(ws.len(), 1);
        assert!(!ws[0].well_formed);
    }

    #[test]
    fn directive_in_string_literal_is_ignored() {
        let src = "let m = \"corridor-lint: allow(no-panic, reason = \\\"x\\\")\";\n";
        assert!(waivers_of(src).is_empty());
    }

    #[test]
    fn trailing_same_line_directive_covers_its_line() {
        let src = "x.unwrap(); // corridor-lint: allow(no-panic, reason = \"safe\")\n";
        let ws = waivers_of(src);
        assert_eq!(ws.len(), 1);
        assert!(ws[0].covers(Rule::NoPanic, 1));
    }
}
