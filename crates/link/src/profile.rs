//! Sampled coverage profiles along the track.

use corridor_propagation::PathLoss;
use corridor_units::{Db, Dbm, Meters};

use crate::{SnrModel, ThroughputModel};

/// One sampled point of a [`CoverageProfile`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProfileSample {
    /// Track position of the sample.
    pub position: Meters,
    /// Total received signal power (all sources combined).
    pub signal: Dbm,
    /// Total noise power (terminal + repeater noise).
    pub noise: Dbm,
    /// Signal-to-noise ratio.
    pub snr: Db,
    /// Spectral efficiency in bps/Hz from the throughput model.
    pub spectral_efficiency: f64,
}

/// A coverage profile: SNR and throughput sampled at regular intervals
/// along a track segment, with summary statistics.
///
/// This is the quantity plotted in the paper's Fig. 3 and the input to the
/// maximum-ISD search of Section V.
///
/// # Examples
///
/// ```
/// use corridor_link::{CoverageProfile, NrCarrier, SignalSource, SnrModel, ThroughputModel};
/// use corridor_propagation::CalibratedFriis;
/// use corridor_units::{Db, Dbm, Hertz, Meters};
///
/// let hp = CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(33.0));
/// let model = SnrModel::new(NrCarrier::paper_100mhz())
///     .with_source(SignalSource::new(Meters::ZERO, Dbm::new(28.8), hp))
///     .with_source(SignalSource::new(Meters::new(500.0), Dbm::new(28.8), hp));
/// let profile = CoverageProfile::sample(
///     &model,
///     Meters::new(500.0),
///     Meters::new(1.0),
///     &ThroughputModel::nr_default(),
/// );
/// assert!(profile.min_snr().unwrap().value() > 29.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoverageProfile {
    samples: Vec<ProfileSample>,
    step: Meters,
}

impl CoverageProfile {
    /// Samples `model` from 0 to `length` (inclusive) in steps of `step`,
    /// evaluating spectral efficiency with `throughput`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive, if `length` is negative,
    /// or if `model` has no sources.
    pub fn sample<M: PathLoss>(
        model: &SnrModel<M>,
        length: Meters,
        step: Meters,
        throughput: &ThroughputModel,
    ) -> Self {
        assert!(step.value() > 0.0, "sample step must be positive");
        assert!(length.value() >= 0.0, "length must be non-negative");
        assert!(
            !model.sources().is_empty(),
            "cannot profile a model with no sources"
        );
        let n = (length.value() / step.value()).round() as usize;
        let mut samples = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let position = Meters::new((i as f64) * step.value()).min(length);
            // corridor-lint: allow(no-panic, reason = "guarded by the sources-nonempty assert at the top of this function")
            let signal = model.total_signal_at(position).expect("model has sources");
            let noise = model.total_noise_at(position);
            let snr = signal - noise;
            samples.push(ProfileSample {
                position,
                signal,
                noise,
                snr,
                spectral_efficiency: throughput.spectral_efficiency(snr),
            });
        }
        CoverageProfile { samples, step }
    }

    /// The sampled points.
    pub fn samples(&self) -> &[ProfileSample] {
        &self.samples
    }

    /// The sampling step.
    pub fn step(&self) -> Meters {
        self.step
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the profile holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Minimum SNR over the profile.
    pub fn min_snr(&self) -> Option<Db> {
        self.samples
            .iter()
            .map(|s| s.snr)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// The sample with the lowest SNR.
    pub fn worst_sample(&self) -> Option<&ProfileSample> {
        self.samples.iter().min_by(|a, b| a.snr.total_cmp(&b.snr))
    }

    /// Mean SNR in dB (arithmetic mean of the dB values).
    pub fn mean_snr_db(&self) -> Option<Db> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: f64 = self.samples.iter().map(|s| s.snr.value()).sum();
        Some(Db::new(sum / self.samples.len() as f64))
    }

    /// Mean spectral efficiency over the profile, bps/Hz.
    pub fn mean_spectral_efficiency(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: f64 = self.samples.iter().map(|s| s.spectral_efficiency).sum();
        Some(sum / self.samples.len() as f64)
    }

    /// Minimum spectral efficiency over the profile, bps/Hz.
    pub fn min_spectral_efficiency(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.spectral_efficiency)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Fraction of samples at the peak rate of `throughput`.
    pub fn fraction_at_peak(&self, throughput: &ThroughputModel) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let peak = self
            .samples
            .iter()
            .filter(|s| throughput.is_peak(s.snr))
            .count();
        peak as f64 / self.samples.len() as f64
    }

    /// The minimum over all train positions of the mean spectral efficiency
    /// seen across a train of length `window` (sliding-window mean).
    ///
    /// A train occupies many metres of track at once; terminals are spread
    /// along it, so the capacity delivered *to the train* is closer to a
    /// windowed average than to the point-wise SNR. Returns `None` if the
    /// window is longer than the profile.
    pub fn min_windowed_mean_se(&self, window: Meters) -> Option<f64> {
        let w = (window.value() / self.step.value()).round() as usize;
        if w == 0 || w > self.samples.len() {
            return None;
        }
        let se: Vec<f64> = self.samples.iter().map(|s| s.spectral_efficiency).collect();
        let mut sum: f64 = se[..w].iter().sum();
        let mut min_mean = sum / w as f64;
        for i in w..se.len() {
            sum += se[i] - se[i - w];
            min_mean = min_mean.min(sum / w as f64);
        }
        Some(min_mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NrCarrier, SignalSource};
    use corridor_propagation::CalibratedFriis;
    use corridor_units::Hertz;

    fn model(isd: f64) -> SnrModel<CalibratedFriis> {
        let hp = CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(33.0));
        SnrModel::new(NrCarrier::paper_100mhz())
            .with_source(SignalSource::new(Meters::ZERO, Dbm::new(28.81), hp))
            .with_source(SignalSource::new(Meters::new(isd), Dbm::new(28.81), hp))
    }

    fn profile(isd: f64, step: f64) -> CoverageProfile {
        CoverageProfile::sample(
            &model(isd),
            Meters::new(isd),
            Meters::new(step),
            &ThroughputModel::nr_default(),
        )
    }

    #[test]
    fn sample_count_and_endpoints() {
        let p = profile(500.0, 1.0);
        assert_eq!(p.len(), 501);
        assert!(!p.is_empty());
        assert_eq!(p.samples()[0].position, Meters::ZERO);
        assert_eq!(p.samples()[500].position, Meters::new(500.0));
        assert_eq!(p.step(), Meters::new(1.0));
    }

    #[test]
    fn worst_point_is_midpoint_for_symmetric_pair() {
        let p = profile(500.0, 1.0);
        let worst = p.worst_sample().unwrap();
        assert!((worst.position.value() - 250.0).abs() <= 1.0);
        assert_eq!(p.min_snr().unwrap(), worst.snr);
    }

    #[test]
    fn conventional_isd_is_all_peak() {
        let p = profile(500.0, 1.0);
        assert_eq!(p.fraction_at_peak(&ThroughputModel::nr_default()), 1.0);
        assert_eq!(p.min_spectral_efficiency().unwrap(), 5.84);
        assert!((p.mean_spectral_efficiency().unwrap() - 5.84).abs() < 1e-12);
    }

    #[test]
    fn overstretched_isd_loses_peak() {
        let p = profile(3000.0, 5.0);
        assert!(p.fraction_at_peak(&ThroughputModel::nr_default()) < 1.0);
        assert!(p.min_spectral_efficiency().unwrap() < 5.84);
        assert!(p.mean_snr_db().unwrap() > p.min_snr().unwrap());
    }

    #[test]
    fn windowed_mean_between_min_and_max() {
        let p = profile(3000.0, 5.0);
        let windowed = p.min_windowed_mean_se(Meters::new(400.0)).unwrap();
        let min = p.min_spectral_efficiency().unwrap();
        let mean = p.mean_spectral_efficiency().unwrap();
        assert!(windowed >= min - 1e-12);
        assert!(windowed <= mean + 1e-12 || windowed <= 5.84);
    }

    #[test]
    fn windowed_mean_none_when_window_too_long() {
        let p = profile(500.0, 1.0);
        assert!(p.min_windowed_mean_se(Meters::new(1000.0)).is_none());
    }

    #[test]
    #[should_panic(expected = "no sources")]
    fn profiling_empty_model_panics() {
        let empty: SnrModel<CalibratedFriis> = SnrModel::new(NrCarrier::paper_100mhz());
        let _ = CoverageProfile::sample(
            &empty,
            Meters::new(100.0),
            Meters::new(1.0),
            &ThroughputModel::nr_default(),
        );
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        let _ = CoverageProfile::sample(
            &model(500.0),
            Meters::new(100.0),
            Meters::ZERO,
            &ThroughputModel::nr_default(),
        );
    }

    #[test]
    fn nan_snr_sample_does_not_win_the_minimum() {
        // regression: min_snr / worst_sample / min_spectral_efficiency
        // used partial_cmp + expect and panicked on NaN. total_cmp orders
        // NaN after +inf, so a NaN sample loses every min search.
        let sample = |snr: f64, se: f64| ProfileSample {
            position: Meters::ZERO,
            signal: Dbm::new(-80.0),
            noise: Dbm::new(-100.0),
            snr: Db::new(snr),
            spectral_efficiency: se,
        };
        let profile = CoverageProfile {
            samples: vec![
                sample(20.0, 5.0),
                sample(f64::NAN, f64::NAN),
                sample(12.0, 3.5),
            ],
            step: Meters::new(1.0),
        };
        assert_eq!(profile.min_snr(), Some(Db::new(12.0)));
        assert_eq!(profile.worst_sample().map(|s| s.snr), Some(Db::new(12.0)));
        assert_eq!(profile.min_spectral_efficiency(), Some(3.5));
    }
}
