//! Cartesian scenario grids: the sweep engine's input.

use core::fmt;

use corridor_core::{ScenarioError, ScenarioParams};
use corridor_deploy::IsdTable;
use corridor_power::{catalog, LoadDependentPower};
use corridor_solar::{climate, Location};
use corridor_units::Meters;

use crate::cell::ScenarioCell;

/// A named pairing of high-power-mast and low-power-repeater power models
/// — one point of the grid's equipment axis.
///
/// # Examples
///
/// ```
/// use corridor_sim::PowerProfile;
/// let paper = PowerProfile::paper();
/// assert_eq!(paper.name(), "paper");
/// assert_eq!(paper.hp().full_load_power().value(), 560.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerProfile {
    name: String,
    hp: LoadDependentPower,
    lp: LoadDependentPower,
}

impl PowerProfile {
    /// The paper's equipment: a two-RRH mast (560 W full load) and the
    /// prototype repeater with its measured 28.38 W full-load draw.
    pub fn paper() -> Self {
        PowerProfile {
            name: "paper".to_owned(),
            hp: catalog::high_power_mast(),
            lp: catalog::low_power_repeater_measured(),
        }
    }

    /// The EARTH-fit variant: same mast, repeater at the Table II EARTH
    /// parameterization (28.26 W full load) instead of the measured bill.
    pub fn earth_fit() -> Self {
        PowerProfile {
            name: "earth-fit".to_owned(),
            hp: catalog::high_power_mast(),
            lp: catalog::low_power_repeater(),
        }
    }

    /// A custom profile under the given name.
    pub fn custom(name: &str, hp: LoadDependentPower, lp: LoadDependentPower) -> Self {
        PowerProfile {
            name: name.to_owned(),
            hp,
            lp,
        }
    }

    /// The profile's name (the grid axis label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The high-power mast model.
    pub fn hp(&self) -> &LoadDependentPower {
        &self.hp
    }

    /// The low-power repeater model.
    pub fn lp(&self) -> &LoadDependentPower {
        &self.lp
    }
}

impl fmt::Display for PowerProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A Cartesian sweep over scenario parameters.
///
/// Every axis defaults to the single paper value, so `ScenarioGrid::new()`
/// expands to exactly one cell — [`ScenarioParams::paper_default`] under
/// the Berlin climate. Setting an axis replaces its values; the expansion
/// is the Cartesian product of all axes in a fixed, documented order
/// (timetable density outermost, then train speed, train length, LP
/// spacing, conventional ISD, power profile, and climate innermost), so
/// cell indices are stable across runs.
///
/// # Examples
///
/// ```
/// use corridor_sim::ScenarioGrid;
/// let grid = ScenarioGrid::new()
///     .trains_per_hour(vec![4.0, 8.0])
///     .train_speeds_kmh(vec![160.0, 200.0, 250.0]);
/// assert_eq!(grid.len(), 6);
/// let cells = grid.expand().unwrap();
/// assert_eq!(cells.len(), 6);
/// assert_eq!(cells[0].trains_per_hour(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    trains_per_hour: Vec<f64>,
    train_speeds_kmh: Vec<f64>,
    train_lengths_m: Vec<f64>,
    lp_spacings_m: Vec<f64>,
    conventional_isds_m: Vec<f64>,
    power_profiles: Vec<PowerProfile>,
    locations: Vec<Location>,
    service_window_h: f64,
    nodes: usize,
    /// The paper-table ISD for `nodes`, resolved when `nodes` is set —
    /// carrying the looked-up value around (instead of re-deriving it
    /// with an `expect()` in `expand`/`deployment_isd`) makes "every
    /// node count has an ISD" an invariant the type proves.
    isd: Meters,
}

impl ScenarioGrid {
    /// The paper's Table III deployment ISD for the default ten-node
    /// corridor, in metres. Written out as a literal (and pinned to the
    /// [`IsdTable::paper`] entry by a unit test) so constructing the
    /// default grid carries no panic path at all.
    const PAPER_DEFAULT_ISD_M: f64 = 2650.0;

    /// The one-cell grid of paper defaults (Berlin climate, ten repeater
    /// nodes).
    pub fn new() -> Self {
        ScenarioGrid {
            trains_per_hour: vec![8.0],
            train_speeds_kmh: vec![200.0],
            train_lengths_m: vec![400.0],
            lp_spacings_m: vec![200.0],
            conventional_isds_m: vec![500.0],
            power_profiles: vec![PowerProfile::paper()],
            locations: vec![climate::berlin()],
            service_window_h: 19.0,
            nodes: 10,
            isd: Meters::new(Self::PAPER_DEFAULT_ISD_M),
        }
    }

    /// The 3-cell smoke grid (timetable densities 4/8/12 trains per
    /// hour) used by `mc --smoke` and the committed `mc_smoke` golden.
    pub fn smoke_3() -> Self {
        ScenarioGrid::new().trains_per_hour(vec![4.0, 8.0, 12.0])
    }

    /// The 200-cell screening grid used by the `sweep` binary and the
    /// serial-vs-parallel bench: 5 conventional ISDs × 5 timetable
    /// densities × 4 train speeds × 2 climates.
    pub fn screening_200() -> Self {
        ScenarioGrid::new()
            .conventional_isds_m(vec![400.0, 450.0, 500.0, 550.0, 600.0])
            .trains_per_hour(vec![4.0, 6.0, 8.0, 10.0, 12.0])
            .train_speeds_kmh(vec![120.0, 160.0, 200.0, 250.0])
            .locations(vec![climate::madrid(), climate::berlin()])
    }

    fn set_axis<T>(axis: &mut Vec<T>, values: Vec<T>, name: &str) {
        assert!(!values.is_empty(), "{name} axis must not be empty");
        *axis = values;
    }

    /// Sets the timetable-density axis (trains per service hour).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn trains_per_hour(mut self, values: Vec<f64>) -> Self {
        Self::set_axis(&mut self.trains_per_hour, values, "trains per hour");
        self
    }

    /// Sets the train-speed axis in km/h.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn train_speeds_kmh(mut self, values: Vec<f64>) -> Self {
        Self::set_axis(&mut self.train_speeds_kmh, values, "train speed");
        self
    }

    /// Sets the train-length axis in metres.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn train_lengths_m(mut self, values: Vec<f64>) -> Self {
        Self::set_axis(&mut self.train_lengths_m, values, "train length");
        self
    }

    /// Sets the repeater-spacing axis in metres.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn lp_spacings_m(mut self, values: Vec<f64>) -> Self {
        Self::set_axis(&mut self.lp_spacings_m, values, "LP spacing");
        self
    }

    /// Sets the conventional-reference-ISD axis in metres.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn conventional_isds_m(mut self, values: Vec<f64>) -> Self {
        Self::set_axis(&mut self.conventional_isds_m, values, "conventional ISD");
        self
    }

    /// Sets the equipment axis (HP/LP power-model pairings).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn power_profiles(mut self, values: Vec<PowerProfile>) -> Self {
        Self::set_axis(&mut self.power_profiles, values, "power profile");
        self
    }

    /// Sets the solar-climate axis.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn locations(mut self, values: Vec<Location>) -> Self {
        Self::set_axis(&mut self.locations, values, "location");
        self
    }

    /// Sets the daily service-window length (a single value, not an axis).
    #[must_use]
    pub fn service_window_h(mut self, hours: f64) -> Self {
        self.service_window_h = hours;
        self
    }

    /// Sets the deployment evaluated in every cell: `nodes` low-power
    /// repeaters at the paper's maximum ISD for that count.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::NoIsdForNodeCount`] if the paper's ISD
    /// table has no entry for `nodes` (it covers 0–10).
    pub fn repeater_nodes(mut self, nodes: usize) -> Result<Self, ScenarioError> {
        self.isd = IsdTable::paper()
            .isd_for(nodes)
            .ok_or(ScenarioError::NoIsdForNodeCount(nodes))?;
        self.nodes = nodes;
        Ok(self)
    }

    /// Number of cells the grid expands to: the product of all axis
    /// lengths.
    #[allow(clippy::len_without_is_empty)] // axes are never empty
    pub fn len(&self) -> usize {
        self.trains_per_hour.len()
            * self.train_speeds_kmh.len()
            * self.train_lengths_m.len()
            * self.lp_spacings_m.len()
            * self.conventional_isds_m.len()
            * self.power_profiles.len()
            * self.locations.len()
    }

    /// The deployment's repeater count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Builds the single cell at `index` without materializing the rest
    /// of the grid: the mixed-radix decomposition of `index` along the
    /// documented axis order (timetable density outermost, climate
    /// innermost). The streaming engines and the serve shards construct
    /// their cells lazily through this accessor, so a million-cell study
    /// holds one cell at a time; [`ScenarioGrid::expand`] is implemented
    /// on top of it, so there is exactly one construction path and the
    /// two can never disagree.
    ///
    /// # Errors
    ///
    /// Returns the [`ScenarioError`] of the cell whose parameters fail
    /// validation (e.g. a zero spacing or an empty timetable on some
    /// axis).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()` — an out-of-range index is a
    /// caller bug, not a scenario property.
    pub fn cell_at(&self, index: usize) -> Result<ScenarioCell, ScenarioError> {
        assert!(
            index < self.len(),
            "cell index {index} out of range for a {}-cell grid",
            self.len()
        );
        // peel axes off innermost-first: the inverse of expand's loops
        let mut rest = index;
        let mut take = |len: usize| {
            let at = rest % len;
            rest /= len;
            at
        };
        let location = &self.locations[take(self.locations.len())];
        let profile = &self.power_profiles[take(self.power_profiles.len())];
        let conv_isd = self.conventional_isds_m[take(self.conventional_isds_m.len())];
        let spacing = self.lp_spacings_m[take(self.lp_spacings_m.len())];
        let length = self.train_lengths_m[take(self.train_lengths_m.len())];
        let speed = self.train_speeds_kmh[take(self.train_speeds_kmh.len())];
        let tph = self.trains_per_hour[rest];
        let params = ScenarioParams::builder()
            .trains_per_hour(tph)
            .service_window_h(self.service_window_h)
            .train_speed_kmh(speed)
            .train_length_m(length)
            .lp_spacing_m(spacing)
            .conventional_isd_m(conv_isd)
            .hp_mast(*profile.hp())
            .lp_node(*profile.lp())
            .build()?;
        Ok(ScenarioCell::new(
            index,
            params,
            location.clone(),
            profile.name().to_owned(),
            self.nodes,
            self.isd,
        ))
    }

    /// Expands the grid into its cells, in the fixed axis order.
    ///
    /// # Errors
    ///
    /// Returns the [`ScenarioError`] of the first cell whose parameters
    /// fail validation (e.g. a zero spacing or an empty timetable on some
    /// axis).
    pub fn expand(&self) -> Result<Vec<ScenarioCell>, ScenarioError> {
        (0..self.len()).map(|index| self.cell_at(index)).collect()
    }

    /// Resolves the grid names shared by the CLI binaries and the serve
    /// protocol's `grid=` parameter; `None` for an unknown name.
    pub fn by_name(name: &str) -> Option<ScenarioGrid> {
        match name {
            "paper" => Some(ScenarioGrid::new()),
            "smoke-3" => Some(ScenarioGrid::smoke_3()),
            "mixed-8" => Some(
                ScenarioGrid::new()
                    .trains_per_hour(vec![4.0, 8.0])
                    .train_speeds_kmh(vec![160.0, 200.0])
                    .locations(vec![climate::madrid(), climate::berlin()]),
            ),
            "screening-200" => Some(ScenarioGrid::screening_200()),
            _ => None,
        }
    }

    /// The deployment ISD every cell is evaluated at.
    pub fn deployment_isd(&self) -> Meters {
        self.isd
    }
}

impl Default for ScenarioGrid {
    /// Returns [`ScenarioGrid::new`].
    fn default() -> Self {
        ScenarioGrid::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_core::ScenarioError;

    #[test]
    fn default_grid_is_one_paper_cell() {
        let grid = ScenarioGrid::new();
        assert_eq!(grid.len(), 1);
        let cells = grid.expand().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].params(), &ScenarioParams::paper_default());
        assert_eq!(cells[0].location().name(), "Berlin");
        assert_eq!(cells[0].nodes(), 10);
        assert_eq!(cells[0].isd(), Meters::new(2650.0));
    }

    #[test]
    fn screening_grid_has_200_cells() {
        let grid = ScenarioGrid::screening_200();
        assert_eq!(grid.len(), 200);
        assert_eq!(grid.expand().unwrap().len(), 200);
    }

    #[test]
    fn expansion_order_is_row_major() {
        let cells = ScenarioGrid::new()
            .trains_per_hour(vec![4.0, 8.0])
            .locations(vec![climate::madrid(), climate::berlin()])
            .expand()
            .unwrap();
        let summary: Vec<(f64, &str)> = cells
            .iter()
            .map(|c| (c.trains_per_hour(), c.location().name()))
            .collect();
        assert_eq!(
            summary,
            vec![
                (4.0, "Madrid"),
                (4.0, "Berlin"),
                (8.0, "Madrid"),
                (8.0, "Berlin"),
            ]
        );
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index(), i);
        }
    }

    #[test]
    fn invalid_axis_value_propagates_scenario_error() {
        let grid = ScenarioGrid::new().lp_spacings_m(vec![200.0, 0.0]);
        assert_eq!(
            grid.expand().unwrap_err(),
            ScenarioError::NonPositiveSpacing
        );
        let grid = ScenarioGrid::new().trains_per_hour(vec![-1.0]);
        assert_eq!(grid.expand().unwrap_err(), ScenarioError::EmptyTimetable);
    }

    #[test]
    #[should_panic(expected = "axis must not be empty")]
    fn empty_axis_rejected() {
        let _ = ScenarioGrid::new().trains_per_hour(Vec::new());
    }

    #[test]
    fn oversized_node_count_is_a_recoverable_error() {
        let err = ScenarioGrid::new().repeater_nodes(11).unwrap_err();
        assert_eq!(err, ScenarioError::NoIsdForNodeCount(11));
        // the fallible path sets nodes and ISD together on success
        let grid = ScenarioGrid::new().repeater_nodes(3).unwrap();
        assert_eq!(grid.nodes(), 3);
        assert_eq!(grid.deployment_isd(), Meters::new(1600.0));
    }

    #[test]
    fn default_isd_literal_matches_paper_table() {
        assert_eq!(
            Meters::new(ScenarioGrid::PAPER_DEFAULT_ISD_M),
            IsdTable::paper().isd_for(10).unwrap()
        );
    }

    #[test]
    fn invalid_service_window_rejected_at_expand() {
        for hours in [0.0, -5.0, 25.0, f64::NAN, f64::INFINITY] {
            let grid = ScenarioGrid::new().service_window_h(hours);
            assert_eq!(
                grid.expand().unwrap_err(),
                ScenarioError::InvalidServiceWindow,
                "hours={hours}"
            );
        }
        // the boundary itself is legal: a 24 h service window expands
        assert!(ScenarioGrid::new().service_window_h(24.0).expand().is_ok());
    }

    #[test]
    fn power_profiles_named() {
        assert_eq!(PowerProfile::paper().to_string(), "paper");
        assert_eq!(PowerProfile::earth_fit().name(), "earth-fit");
        let custom =
            PowerProfile::custom("flat", catalog::high_power_mast(), catalog::onboard_relay());
        assert_eq!(custom.name(), "flat");
        assert_eq!(custom.lp().p0().value(), 650.0);
    }

    #[test]
    fn cell_at_agrees_with_expand_on_an_uneven_grid() {
        // deliberately unequal axis lengths so a radix mix-up cannot
        // cancel out
        let grid = ScenarioGrid::new()
            .trains_per_hour(vec![2.0, 6.0, 10.0])
            .train_speeds_kmh(vec![160.0, 250.0])
            .lp_spacings_m(vec![150.0, 200.0, 300.0, 350.0])
            .power_profiles(vec![PowerProfile::paper(), PowerProfile::earth_fit()])
            .locations(vec![climate::madrid(), climate::berlin(), climate::lyon()]);
        let cells = grid.expand().unwrap();
        assert_eq!(cells.len(), grid.len());
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(&grid.cell_at(i).unwrap(), cell, "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cell_at_rejects_out_of_range_indices() {
        let _ = ScenarioGrid::new().cell_at(1);
    }

    #[test]
    fn named_grids_resolve() {
        assert_eq!(ScenarioGrid::by_name("paper").unwrap().len(), 1);
        assert_eq!(ScenarioGrid::by_name("smoke-3").unwrap().len(), 3);
        assert_eq!(ScenarioGrid::by_name("mixed-8").unwrap().len(), 8);
        assert_eq!(ScenarioGrid::by_name("screening-200").unwrap().len(), 200);
        assert!(ScenarioGrid::by_name("nope").is_none());
    }

    #[test]
    fn nodes_axis_changes_deployment() {
        let grid = ScenarioGrid::new().repeater_nodes(1).unwrap();
        assert_eq!(grid.nodes(), 1);
        assert_eq!(grid.deployment_isd(), Meters::new(1250.0));
        let cells = grid.expand().unwrap();
        assert_eq!(cells[0].nodes(), 1);
        assert_eq!(cells[0].isd(), Meters::new(1250.0));
    }
}
