//! Minimal, dependency-free stand-in for the parts of the `rayon` crate
//! this workspace uses.
//!
//! The build environment is offline, so the real `rayon` cannot be fetched
//! from crates.io. This shim keeps data-parallel call sites *runnable and
//! genuinely parallel*: the terminal operations (`collect`, `for_each`,
//! `sum`) seed one work deque per scoped worker thread with a contiguous
//! block of items; each worker drains its own deque LIFO and, when empty,
//! steals the older half of another worker's deque (work stealing, like
//! the real crate's scheduler) before reassembling the results **in input
//! order**. Because each item is processed independently and results are
//! re-ordered by index, a pipeline's output is byte-identical no matter
//! how many worker threads execute it — a property the test suite pins
//! under adversarial task-size skew.
//!
//! Differences from the real crate, by design:
//!
//! * worker threads are scoped to each terminal operation instead of being
//!   pooled for the process lifetime — correct but slower for tiny items,
//!   so keep per-item work coarse (the sweep engine's cells are ideal);
//! * adapters are eager at stage boundaries: chaining two `map`s runs two
//!   parallel passes;
//! * only the surface the workspace uses exists: [`ThreadPoolBuilder`] /
//!   [`ThreadPool::install`], [`current_num_threads`], `par_iter` /
//!   `into_par_iter`, the [`ParallelIterator`] adapters `map`,
//!   `for_each`, `collect`, `sum`, and the shim-specific
//!   [`stream_ordered`] (a bounded-window streaming map for pipelines
//!   that must not materialize their output).
//!
//! # Examples
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<usize> = (0..100).into_par_iter().map(|i| i * i).collect();
//! assert_eq!(squares[7], 49);
//!
//! // An explicit pool pins the worker count for everything run inside it.
//! let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
//! let doubled: Vec<i32> = pool.install(|| vec![1, 2, 3].par_iter().map(|x| x * 2).collect());
//! assert_eq!(doubled, vec![2, 4, 6]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::iter::Sum;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, PoisonError};
use std::thread;

thread_local! {
    /// Worker count installed by [`ThreadPool::install`] on this thread.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads terminal operations started on this thread
/// will use: the innermost [`ThreadPool::install`] if one is active,
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS
        .with(Cell::get)
        .unwrap_or_else(default_num_threads)
}

fn default_num_threads() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// Error returned by [`ThreadPoolBuilder::build`].
///
/// The shim's build never fails; the type exists for API parity so call
/// sites keep their `?` / `unwrap` shape when swapping the real crate in.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds a [`ThreadPool`] with a chosen worker count.
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (automatic) worker count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads; `0` means automatic.
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool (infallible in the shim).
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` mirrors the real crate's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads })
    }
}

/// A handle fixing the worker count for operations run via
/// [`ThreadPool::install`].
///
/// The shim's pool holds no threads of its own; workers are spawned per
/// terminal operation, scoped, and joined before the operation returns.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The worker count this pool runs terminal operations with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool's worker count installed: every parallel
    /// terminal operation `op` starts (on this thread) uses it.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|cell| cell.set(self.0));
            }
        }
        let _restore = Restore(INSTALLED_THREADS.with(|cell| cell.replace(Some(self.num_threads))));
        op()
    }
}

/// Locks a mutex, ignoring poisoning (a panicked worker's payload is
/// re-raised at join time; its deque stays usable for the others).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Maps `items` through `f` on `workers` threads with per-worker
/// work-stealing deques; results come back in input order.
///
/// Each worker's deque is seeded with a contiguous block of items. A
/// worker drains its own deque from the back (LIFO); when it runs dry it
/// scans the other deques and steals the older half of the first
/// non-empty one. Deques only ever shrink, so a full scan finding
/// nothing to steal is a safe termination condition. At most one deque
/// lock is held at any moment, so workers can never deadlock.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F, workers: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let base = n / workers;
    let extra = n % workers;
    let mut deques: Vec<Mutex<VecDeque<(usize, T)>>> = Vec::with_capacity(workers);
    let mut seed = items.into_iter().enumerate();
    for w in 0..workers {
        let block = base + usize::from(w < extra);
        deques.push(Mutex::new(seed.by_ref().take(block).collect()));
    }
    let deques = &deques;
    let mut indexed: Vec<(usize, R)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        if let Some((index, item)) = lock(&deques[w]).pop_back() {
                            local.push((index, f(item)));
                            continue;
                        }
                        // own deque dry: steal the older half of the
                        // first non-empty victim (collect outside the
                        // victim's lock before touching our own)
                        let mut stolen: Vec<(usize, T)> = Vec::new();
                        for offset in 1..workers {
                            let victim = &deques[(w + offset) % workers];
                            let mut guard = lock(victim);
                            let len = guard.len();
                            if len > 0 {
                                stolen.extend(guard.drain(..len - len / 2));
                                break;
                            }
                        }
                        if stolen.is_empty() {
                            break;
                        }
                        lock(&deques[w]).extend(stolen);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| match handle.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    indexed.sort_unstable_by_key(|(index, _)| *index);
    indexed.into_iter().map(|(_, result)| result).collect()
}

/// Shared state of one [`stream_ordered`] run: the lazy item source,
/// the assignment/emission cursors and the reorder buffer, all behind
/// one mutex with two condvars (`work`: a window slot or new work may be
/// available; `results`: a result the consumer may be waiting on landed).
struct StreamState<I: Iterator, R> {
    source: I,
    source_done: bool,
    /// Index the next pulled item will get (== items assigned so far).
    next_index: usize,
    /// Results handed to the consumer so far.
    emitted: usize,
    /// Items currently being computed by a worker.
    in_flight: usize,
    /// Finished results awaiting in-order emission (panics included, so
    /// an assigned item always produces exactly one entry).
    ready: BTreeMap<usize, thread::Result<R>>,
    /// Set on worker panic or consumer error: workers stop pulling.
    cancelled: bool,
}

/// Maps `items` through `f` on `workers` threads and feeds the results
/// to `consume` **in input order**, with at most `window` items assigned
/// but not yet consumed — the bounded-channel backpressure primitive
/// behind the streaming sweep engines.
///
/// Unlike [`ParallelIterator::collect`], neither the input nor the
/// output is ever materialized: items are pulled lazily from the
/// iterator as window slots free up, and each result is dropped (or
/// forwarded) by `consume` before the window admits more work. Memory is
/// O(`window`) regardless of input length. `consume` runs on the calling
/// thread; returning `Err` cancels the remaining work and the error is
/// handed back. A panic inside `f` cancels the stream and is re-raised
/// on the calling thread once in-flight work has drained. With identical
/// inputs the consumed sequence is identical for every worker count —
/// the same order contract as the rest of the shim.
///
/// `workers == 0` or `1` runs serially on the calling thread; `window`
/// is clamped to at least 1.
///
/// # Errors
///
/// Returns the first `Err` produced by `consume`; the remaining items
/// are not computed.
///
/// # Examples
///
/// ```
/// let mut seen = Vec::new();
/// rayon::stream_ordered(0..100usize, 4, 8, |i| i * i, |sq| {
///     seen.push(sq);
///     Ok::<(), ()>(())
/// })
/// .unwrap();
/// assert_eq!(seen[9], 81);
/// assert_eq!(seen.len(), 100);
/// ```
pub fn stream_ordered<I, R, E, F, C>(
    items: I,
    workers: usize,
    window: usize,
    f: F,
    mut consume: C,
) -> Result<(), E>
where
    I: IntoIterator,
    I::Item: Send,
    I::IntoIter: Send,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
    C: FnMut(R) -> Result<(), E>,
{
    if workers <= 1 {
        for item in items {
            consume(f(item))?;
        }
        return Ok(());
    }
    let window = window.max(1);
    let state = Mutex::new(StreamState {
        source: items.into_iter(),
        source_done: false,
        next_index: 0,
        emitted: 0,
        in_flight: 0,
        ready: BTreeMap::new(),
        cancelled: false,
    });
    let work = Condvar::new();
    let results = Condvar::new();
    let (error, panic) = thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                loop {
                    let task = {
                        let mut st = lock(&state);
                        loop {
                            if st.cancelled || st.source_done {
                                break None;
                            }
                            if st.next_index - st.emitted < window {
                                match st.source.next() {
                                    Some(item) => {
                                        let index = st.next_index;
                                        st.next_index += 1;
                                        st.in_flight += 1;
                                        break Some((index, item));
                                    }
                                    None => {
                                        st.source_done = true;
                                        // wake the consumer (it may be
                                        // waiting for a result that will
                                        // never exist) and idle peers
                                        results.notify_all();
                                        work.notify_all();
                                        break None;
                                    }
                                }
                            }
                            st = work.wait(st).unwrap_or_else(PoisonError::into_inner);
                        }
                    };
                    let Some((index, item)) = task else {
                        return;
                    };
                    let result = catch_unwind(AssertUnwindSafe(|| f(item)));
                    let mut st = lock(&state);
                    st.in_flight -= 1;
                    if result.is_err() {
                        st.cancelled = true;
                        work.notify_all();
                    }
                    st.ready.insert(index, result);
                    results.notify_all();
                }
            });
        }
        let mut error = None;
        let mut panic = None;
        let mut emit_index = 0usize;
        loop {
            let next = {
                let mut st = lock(&state);
                loop {
                    if let Some(result) = st.ready.remove(&emit_index) {
                        st.emitted += 1;
                        work.notify_all();
                        break Some(result);
                    }
                    if st.source_done && st.in_flight == 0 && emit_index >= st.next_index {
                        break None;
                    }
                    st = results.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            };
            match next {
                None => break,
                Some(Ok(result)) => {
                    if let Err(err) = consume(result) {
                        lock(&state).cancelled = true;
                        work.notify_all();
                        error = Some(err);
                        break;
                    }
                    emit_index += 1;
                }
                Some(Err(payload)) => {
                    lock(&state).cancelled = true;
                    work.notify_all();
                    panic = Some(payload);
                    break;
                }
            }
        }
        (error, panic)
    });
    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
    match error {
        Some(err) => Err(err),
        None => Ok(()),
    }
}

/// A data-parallel pipeline over an ordered set of items.
pub trait ParallelIterator: Sized {
    /// The element type the pipeline yields.
    type Item: Send;

    /// Executes the pipeline on the current pool, yielding the results in
    /// input order.
    fn run(self) -> Vec<Self::Item>;

    /// Transforms every item through `f` (in parallel at execution time).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = Map { base: self, f }.run();
    }

    /// Executes the pipeline and collects the ordered results.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_ordered_results(self.run())
    }

    /// Executes the pipeline and sums the results.
    fn sum<S>(self) -> S
    where
        S: Sum<Self::Item>,
    {
        self.run().into_iter().sum()
    }
}

/// Conversion from the ordered results of a parallel pipeline
/// (the shim's counterpart of rayon's `FromParallelIterator`).
pub trait FromParallelIterator<T: Send> {
    /// Builds `Self` from results already in input order.
    fn from_ordered_results(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_results(items: Vec<T>) -> Self {
        items
    }
}

/// The base pipeline: a materialized, ordered set of items.
#[derive(Debug, Clone)]
pub struct IterParallel<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterParallel<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// A pipeline stage applying a closure to every item of `I`.
#[derive(Debug, Clone)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map(self.base.run(), &self.f, current_num_threads())
    }
}

/// Types convertible into a parallel pipeline by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterParallel<T>;

    fn into_par_iter(self) -> IterParallel<T> {
        IterParallel { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = IterParallel<usize>;

    fn into_par_iter(self) -> IterParallel<usize> {
        IterParallel {
            items: self.collect(),
        }
    }
}

/// Types whose references yield a parallel pipeline (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send + 'a;
    /// The pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// A parallel pipeline over references to `self`'s elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IterParallel<&'a T>;

    fn par_iter(&'a self) -> IterParallel<&'a T> {
        IterParallel {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IterParallel<&'a T>;

    fn par_iter(&'a self) -> IterParallel<&'a T> {
        self.as_slice().par_iter()
    }
}

/// One-stop imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_input_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_consumes_vec() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|x| x.to_string())
            .collect();
        assert_eq!(out, vec!["1", "2", "3"]);
    }

    #[test]
    fn range_pipeline_and_sum() {
        let total: usize = (0..100).into_par_iter().map(|x| x).sum();
        assert_eq!(total, 4950);
    }

    #[test]
    fn for_each_visits_every_item() {
        let visits = AtomicUsize::new(0);
        (0..257).into_par_iter().for_each(|_| {
            visits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(visits.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<usize> = (0..10)
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x * 10)
            .collect();
        assert_eq!(out[9], 100);
    }

    #[test]
    fn install_pins_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| assert_eq!(current_num_threads(), 3));
        // nesting restores the outer pool's count
        let outer = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 5);
            pool.install(|| assert_eq!(current_num_threads(), 3));
            assert_eq!(current_num_threads(), 5);
        });
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn zero_threads_means_automatic() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let input: Vec<u64> = (0..500).collect();
        let reference: Vec<u64> = input.iter().map(|&x| x.wrapping_mul(x) ^ 0xABCD).collect();
        for workers in [1, 2, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(workers)
                .build()
                .unwrap();
            let out: Vec<u64> = pool.install(|| {
                input
                    .par_iter()
                    .map(|&x| x.wrapping_mul(x) ^ 0xABCD)
                    .collect()
            });
            assert_eq!(out, reference, "workers = {workers}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let pool = ThreadPoolBuilder::new().num_threads(16).build().unwrap();
        let out: Vec<u32> = pool.install(|| vec![7u32].into_par_iter().map(|x| x + 1).collect());
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn build_error_formats() {
        let err = ThreadPoolBuildError(());
        assert!(err.to_string().contains("thread pool"));
    }

    #[test]
    fn stream_ordered_preserves_order() {
        for workers in [1usize, 2, 8] {
            let mut seen = Vec::new();
            stream_ordered(
                0..500usize,
                workers,
                4,
                |i| i * 3,
                |r| {
                    seen.push(r);
                    Ok::<(), ()>(())
                },
            )
            .unwrap();
            assert_eq!(
                seen,
                (0..500).map(|i| i * 3).collect::<Vec<_>>(),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn stream_ordered_bounds_outstanding_work() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        const WINDOW: usize = 4;
        let produced = AtomicUsize::new(0);
        let consumed = AtomicUsize::new(0);
        let max_gap = AtomicUsize::new(0);
        stream_ordered(
            0..300usize,
            8,
            WINDOW,
            |i| {
                let p = produced.fetch_add(1, Ordering::SeqCst) + 1;
                let gap = p.saturating_sub(consumed.load(Ordering::SeqCst));
                max_gap.fetch_max(gap, Ordering::SeqCst);
                i
            },
            |_| {
                consumed.fetch_add(1, Ordering::SeqCst);
                Ok::<(), ()>(())
            },
        )
        .unwrap();
        // the window admits at most WINDOW assigned-but-unconsumed items;
        // the produced/consumed counters lag assignment/emission by at
        // most one item each, hence the +1 slack
        assert!(
            max_gap.load(Ordering::SeqCst) <= WINDOW + 1,
            "observed gap {} with window {WINDOW}",
            max_gap.load(Ordering::SeqCst)
        );
        assert_eq!(consumed.load(Ordering::SeqCst), 300);
    }

    #[test]
    fn stream_ordered_consumer_error_cancels_remaining_work() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let computed = AtomicUsize::new(0);
        let result = stream_ordered(
            0..100_000usize,
            4,
            4,
            |i| {
                computed.fetch_add(1, Ordering::SeqCst);
                i
            },
            |i| if i == 9 { Err("enough") } else { Ok(()) },
        );
        assert_eq!(result, Err("enough"));
        // cancellation means nowhere near the full input was computed
        assert!(computed.load(Ordering::SeqCst) < 1000);
    }

    #[test]
    fn stream_ordered_propagates_worker_panics() {
        let caught = std::panic::catch_unwind(|| {
            stream_ordered(
                0..64usize,
                4,
                4,
                |i| {
                    if i == 13 {
                        panic!("unlucky");
                    }
                    i
                },
                |_| Ok::<(), ()>(()),
            )
        });
        let payload = caught.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "unlucky");
    }

    #[test]
    fn stream_ordered_handles_empty_and_tiny_inputs() {
        for workers in [1usize, 8] {
            let mut seen: Vec<usize> = Vec::new();
            stream_ordered(
                std::iter::empty::<usize>(),
                workers,
                4,
                |i| i,
                |r| {
                    seen.push(r);
                    Ok::<(), ()>(())
                },
            )
            .unwrap();
            assert!(seen.is_empty());
            stream_ordered(
                [7usize],
                workers,
                1,
                |i| i + 1,
                |r| {
                    seen.push(r);
                    Ok::<(), ()>(())
                },
            )
            .unwrap();
            assert_eq!(seen, vec![8]);
            seen.clear();
        }
    }
}
