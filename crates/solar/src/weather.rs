//! Synthetic day-to-day weather variability.

use rand::Rng;
use rand::SeedableRng;

use crate::Location;

/// A seeded generator of daily irradiation multipliers around a location's
/// monthly normals.
///
/// Battery sizing is driven not by *average* winter irradiation but by
/// *strings of overcast days*; a deterministic monthly mean would hide
/// them. This generator draws, for each day, a multiplier on the monthly
/// GHI normal with bounded relative variability and first-order
/// persistence (overcast days cluster, as real synoptic weather does).
///
/// With `variability = 0` the generator degenerates to the deterministic
/// monthly normals (every multiplier is 1).
///
/// # Examples
///
/// ```
/// use corridor_solar::{climate, WeatherGenerator};
/// let mut weather = WeatherGenerator::new(climate::berlin(), 42);
/// let year = weather.daily_multipliers_for_year();
/// assert_eq!(year.len(), 365);
/// assert!(year.iter().all(|&w| (0.1..=2.2).contains(&w)));
/// ```
#[derive(Debug, Clone)]
pub struct WeatherGenerator {
    location: Location,
    variability: f64,
    persistence: f64,
    rng: rand::rngs::StdRng,
}

impl WeatherGenerator {
    /// Default relative day-to-day variability (fraction of the monthly
    /// normal).
    pub const DEFAULT_VARIABILITY: f64 = 0.95;
    /// Fallback first-order persistence of the weather anomaly (sites
    /// carry their own via [`Location::overcast_persistence`]).
    pub const DEFAULT_PERSISTENCE: f64 = 0.75;
    /// Multiplier floor: thick overcast still transmits some diffuse light.
    pub const MIN_MULTIPLIER: f64 = 0.10;
    /// Multiplier ceiling: an exceptionally clear day relative to the mean.
    pub const MAX_MULTIPLIER: f64 = 2.2;

    /// A generator for `location` with the default variability, seeded for
    /// reproducibility.
    pub fn new(location: Location, seed: u64) -> Self {
        let persistence = location.overcast_persistence();
        WeatherGenerator {
            location,
            variability: Self::DEFAULT_VARIABILITY,
            persistence,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the relative variability (0 = deterministic normals).
    ///
    /// # Panics
    ///
    /// Panics if `variability` is negative.
    #[must_use]
    pub fn with_variability(mut self, variability: f64) -> Self {
        assert!(variability >= 0.0, "variability must be non-negative");
        self.variability = variability;
        self
    }

    /// Overrides the persistence coefficient in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `persistence` is outside `[0, 1)`.
    #[must_use]
    pub fn with_persistence(mut self, persistence: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&persistence),
            "persistence must be in [0, 1)"
        );
        self.persistence = persistence;
        self
    }

    /// The location whose normals are used.
    pub fn location(&self) -> &Location {
        &self.location
    }

    /// Draws a full year (365 days) of daily GHI multipliers; multiply by
    /// [`Location::ghi_for_doy_wh_m2`] to get the day's irradiation.
    pub fn daily_multipliers_for_year(&mut self) -> Vec<f64> {
        if self.variability == 0.0 {
            return vec![1.0; 365];
        }
        let mut anomaly: f64 = 0.0;
        (1..=365u32)
            .map(|_| {
                // AR(1) anomaly with unit-variance-preserving innovation
                let shock: f64 = self.rng.gen_range(-1.0..1.0);
                anomaly = self.persistence * anomaly
                    + (1.0 - self.persistence * self.persistence).sqrt() * shock;
                (1.0 + self.variability * anomaly).clamp(Self::MIN_MULTIPLIER, Self::MAX_MULTIPLIER)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::climate;

    #[test]
    fn deterministic_when_variability_zero() {
        let mut w = WeatherGenerator::new(climate::madrid(), 1).with_variability(0.0);
        let year = w.daily_multipliers_for_year();
        assert!(year.iter().all(|&m| m == 1.0));
    }

    #[test]
    fn reproducible_with_seed() {
        let a = WeatherGenerator::new(climate::berlin(), 7).daily_multipliers_for_year();
        let b = WeatherGenerator::new(climate::berlin(), 7).daily_multipliers_for_year();
        assert_eq!(a, b);
        let c = WeatherGenerator::new(climate::berlin(), 8).daily_multipliers_for_year();
        assert_ne!(a, c);
    }

    #[test]
    fn yearly_mean_close_to_one() {
        let mut w = WeatherGenerator::new(climate::lyon(), 3);
        let year = w.daily_multipliers_for_year();
        let mean: f64 = year.iter().sum::<f64>() / 365.0;
        assert!((mean - 1.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn bounds_respected() {
        let mut w = WeatherGenerator::new(climate::berlin(), 5).with_variability(3.0);
        for m in w.daily_multipliers_for_year() {
            assert!(
                (WeatherGenerator::MIN_MULTIPLIER..=WeatherGenerator::MAX_MULTIPLIER).contains(&m)
            );
        }
    }

    #[test]
    fn persistence_produces_runs() {
        // with high persistence, consecutive-day correlation is positive
        let mut w = WeatherGenerator::new(climate::berlin(), 11).with_persistence(0.9);
        let year = w.daily_multipliers_for_year();
        let mean: f64 = year.iter().sum::<f64>() / 365.0;
        let num: f64 = year.windows(2).map(|p| (p[0] - mean) * (p[1] - mean)).sum();
        let den: f64 = year.iter().map(|m| (m - mean) * (m - mean)).sum();
        assert!(num / den > 0.3, "lag-1 autocorrelation {}", num / den);
    }

    #[test]
    fn location_accessor() {
        let w = WeatherGenerator::new(climate::vienna(), 0);
        assert_eq!(w.location().name(), "Vienna");
    }

    #[test]
    #[should_panic(expected = "persistence")]
    fn invalid_persistence_rejected() {
        let _ = WeatherGenerator::new(climate::madrid(), 0).with_persistence(1.0);
    }
}
