//! Year-long off-grid system simulation.

use core::fmt;

use corridor_units::WattHours;

use crate::{
    Battery, DailyLoadProfile, Location, PvArray, SolarGeometry, Transposition, WeatherGenerator,
};

/// Summary statistics of one simulated year, mirroring the PVGIS off-grid
/// report used in the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct YearStats {
    days: u32,
    full_battery_days: u32,
    downtime_days: u32,
    unmet_energy: WattHours,
    curtailed_energy: WattHours,
    generation: WattHours,
    consumption: WattHours,
    min_soc_fraction: f64,
}

impl YearStats {
    /// Number of simulated days.
    pub fn days(&self) -> u32 {
        self.days
    }

    /// Days on which the battery reached full charge.
    pub fn full_battery_days(&self) -> u32 {
        self.full_battery_days
    }

    /// Fraction of days with a full battery (the paper's Table IV metric).
    pub fn full_battery_day_fraction(&self) -> f64 {
        f64::from(self.full_battery_days) / f64::from(self.days)
    }

    /// Days with unserved load (the paper requires zero).
    pub fn downtime_days(&self) -> u32 {
        self.downtime_days
    }

    /// Total unserved load energy.
    pub fn unmet_energy(&self) -> WattHours {
        self.unmet_energy
    }

    /// Generation that could not be stored or used.
    pub fn curtailed_energy(&self) -> WattHours {
        self.curtailed_energy
    }

    /// Total PV generation.
    pub fn generation(&self) -> WattHours {
        self.generation
    }

    /// Total load.
    pub fn consumption(&self) -> WattHours {
        self.consumption
    }

    /// Lowest state of charge reached, as a fraction of nominal capacity.
    pub fn min_soc_fraction(&self) -> f64 {
        self.min_soc_fraction
    }
}

impl fmt::Display for YearStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} % days full, {} downtime day(s), {:.0} generated / {:.0} consumed",
            self.full_battery_day_fraction() * 100.0,
            self.downtime_days,
            self.generation.value(),
            self.consumption.value()
        )
    }
}

/// A complete off-grid repeater power system at a location: PV array,
/// battery and load, simulated hourly over a full year with synthetic
/// weather.
///
/// # Examples
///
/// ```
/// use corridor_solar::{climate, Battery, DailyLoadProfile, OffGridSystem, PvArray};
/// use corridor_units::WattHours;
///
/// let system = OffGridSystem::new(
///     climate::madrid(),
///     PvArray::standard_modules(3),
///     Battery::with_capacity(WattHours::new(720.0)),
///     DailyLoadProfile::repeater_paper_default(),
/// );
/// let stats = system.simulate_year(1);
/// assert_eq!(stats.days(), 365);
/// ```
#[derive(Debug, Clone)]
pub struct OffGridSystem {
    location: Location,
    pv: PvArray,
    battery: Battery,
    load: DailyLoadProfile,
    transposition: Transposition,
    variability: f64,
    persistence: f64,
}

impl OffGridSystem {
    /// Clearness floor/ceiling when converting daily GHI to an index.
    pub(crate) const KT_RANGE: (f64, f64) = (0.03, 0.85);

    /// A system with the paper's mounting (vertical, south-facing) and the
    /// default weather variability.
    pub fn new(location: Location, pv: PvArray, battery: Battery, load: DailyLoadProfile) -> Self {
        let geometry = SolarGeometry::at_latitude(location.latitude_deg());
        let persistence = location.overcast_persistence();
        OffGridSystem {
            location,
            pv,
            battery,
            load,
            transposition: Transposition::vertical_south(geometry),
            variability: WeatherGenerator::DEFAULT_VARIABILITY,
            persistence,
        }
    }

    /// Overrides the module mounting (tilt/azimuth).
    #[must_use]
    pub fn with_mounting(mut self, tilt_deg: f64, azimuth_deg: f64) -> Self {
        let geometry = SolarGeometry::at_latitude(self.location.latitude_deg());
        self.transposition = Transposition::new(geometry, tilt_deg, azimuth_deg);
        self
    }

    /// Overrides the weather variability (0 = deterministic normals).
    #[must_use]
    pub fn with_weather_variability(mut self, variability: f64, persistence: f64) -> Self {
        self.variability = variability;
        self.persistence = persistence;
        self
    }

    /// The simulated site.
    pub fn location(&self) -> &Location {
        &self.location
    }

    /// The PV array.
    pub fn pv(&self) -> &PvArray {
        &self.pv
    }

    /// The battery (template state; simulations start from full).
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// The load profile.
    pub fn load(&self) -> &DailyLoadProfile {
        &self.load
    }

    /// Simulates one year (365 days, hourly) with weather seed `seed`.
    ///
    /// The battery starts full on January 1st; the seed fully determines
    /// the weather, so results are reproducible.
    ///
    /// The candidate-independent environment (seeded clearness draws and
    /// plane-of-array transposition) is computed once per
    /// `(site, mounting, weather, seed)` and shared process-wide, so a
    /// sizing search re-simulating the same weather year through many
    /// PV/battery candidates pays only for the battery stepping.
    pub fn simulate_year(&self, seed: u64) -> YearStats {
        let env = crate::environment::cached_year(
            &self.location,
            &self.transposition,
            self.variability,
            self.persistence,
            seed,
        );
        let mut battery = self.battery;
        battery.reset_full();

        let mut stats = YearStats {
            days: 365,
            full_battery_days: 0,
            downtime_days: 0,
            unmet_energy: WattHours::ZERO,
            curtailed_energy: WattHours::ZERO,
            generation: WattHours::ZERO,
            consumption: WattHours::ZERO,
            min_soc_fraction: 1.0,
        };

        for day in 0..365usize {
            let ambient = env.ambient[day];

            let mut full_today = false;
            let mut unmet_today = false;
            for hour in 0..24usize {
                let poa = env.poa[day * 24 + hour];
                let generation = WattHours::new(self.pv.output_power_w(poa, ambient));
                let load = self.load.energy_at_hour(hour);
                let step = battery.step(generation, load);
                stats.generation += generation;
                stats.consumption += load;
                stats.unmet_energy += step.unmet;
                stats.curtailed_energy += step.curtailed;
                full_today |= step.full_after;
                unmet_today |= step.unmet.value() > 0.0;
                stats.min_soc_fraction = stats.min_soc_fraction.min(battery.soc_fraction());
            }
            if full_today {
                stats.full_battery_days += 1;
            }
            if unmet_today {
                stats.downtime_days += 1;
            }
        }
        stats
    }

    /// Simulates several seeded years and returns the per-year stats.
    pub fn simulate_years(&self, seeds: &[u64]) -> Vec<YearStats> {
        seeds.iter().map(|&s| self.simulate_year(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::climate;

    fn system(location: Location, modules: u32, battery_wh: f64) -> OffGridSystem {
        OffGridSystem::new(
            location,
            PvArray::standard_modules(modules),
            Battery::with_capacity(WattHours::new(battery_wh)),
            DailyLoadProfile::repeater_paper_default(),
        )
    }

    #[test]
    fn madrid_standard_system_has_no_downtime() {
        let stats = system(climate::madrid(), 3, 720.0).simulate_year(1);
        assert_eq!(stats.downtime_days(), 0, "{stats}");
        assert!(stats.full_battery_day_fraction() > 0.90, "{stats}");
    }

    #[test]
    fn generation_dwarfs_load_in_madrid() {
        let stats = system(climate::madrid(), 3, 720.0).simulate_year(2);
        assert!(stats.generation() > stats.consumption() * 3.0);
        // most of the surplus is necessarily curtailed
        assert!(stats.curtailed_energy() > WattHours::ZERO);
    }

    #[test]
    fn berlin_worse_than_madrid() {
        let madrid = system(climate::madrid(), 3, 720.0).simulate_year(5);
        let berlin = system(climate::berlin(), 3, 720.0).simulate_year(5);
        assert!(
            berlin.full_battery_day_fraction() < madrid.full_battery_day_fraction(),
            "berlin {berlin}, madrid {madrid}"
        );
        assert!(berlin.min_soc_fraction() <= madrid.min_soc_fraction());
    }

    #[test]
    fn bigger_battery_never_hurts() {
        let small = system(climate::vienna(), 3, 720.0).simulate_year(9);
        let big = system(climate::vienna(), 3, 1440.0).simulate_year(9);
        assert!(big.downtime_days() <= small.downtime_days());
        assert!(big.unmet_energy() <= small.unmet_energy());
    }

    #[test]
    fn more_pv_never_hurts() {
        let small = system(climate::berlin(), 3, 720.0).simulate_year(13);
        let big = system(climate::berlin(), 5, 720.0).simulate_year(13);
        assert!(big.downtime_days() <= small.downtime_days());
        assert!(big.generation() > small.generation());
    }

    #[test]
    fn deterministic_weather_variant() {
        let sys = system(climate::lyon(), 3, 720.0).with_weather_variability(0.0, 0.0);
        let a = sys.simulate_year(1);
        let b = sys.simulate_year(99);
        // zero variability: the seed is irrelevant
        assert_eq!(a, b);
    }

    #[test]
    fn reproducible_per_seed() {
        let sys = system(climate::vienna(), 3, 720.0);
        assert_eq!(sys.simulate_year(4), sys.simulate_year(4));
        let multi = sys.simulate_years(&[1, 2, 3]);
        assert_eq!(multi.len(), 3);
        assert_eq!(multi[0], sys.simulate_year(1));
    }

    #[test]
    fn consumption_matches_profile() {
        let stats = system(climate::madrid(), 3, 720.0).simulate_year(3);
        let expected = DailyLoadProfile::repeater_paper_default()
            .daily_energy()
            .value()
            * 365.0;
        assert!((stats.consumption().value() - expected).abs() < 1e-6);
    }

    #[test]
    fn stats_display() {
        let stats = system(climate::madrid(), 3, 720.0).simulate_year(1);
        let s = stats.to_string();
        assert!(s.contains("% days full"));
    }
}
