//! Deployment-optimizer throughput: candidate configurations per
//! second, serial vs parallel, plus the coverage cache's measured
//! saving over the naive per-step sweep.
//!
//! Besides the criterion timings, the bench prints a one-shot
//! wall-clock comparison recording configs/s and the cache hit rate,
//! and asserts the acceptance property directly: the shared cache
//! samples at least 2x fewer SNR profiles than the naive per-step
//! search (which pays one profile per coverage lookup) would.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use corridor_core::units::Meters;
use corridor_sim::{DeploymentOptimizer, IsdSearch, ScenarioGrid, SearchSpace};

fn short_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

/// The criterion workload: 4 cells x 11 counts through the cached
/// model-grid search, small enough for the criterion budget.
fn bench_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0])
        .train_speeds_kmh(vec![160.0, 200.0])
}

fn bench_space() -> SearchSpace {
    SearchSpace::new()
        .sample_step(Meters::new(10.0))
        .isd_search(IsdSearch::model_paper_grid())
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let grid = bench_grid();
    let space = bench_space();
    let mut group = c.benchmark_group("optimize4");
    group.bench_function("serial", |b| {
        let optimizer = DeploymentOptimizer::new().workers(1);
        b.iter(|| {
            optimizer
                .run_serial(black_box(&grid), black_box(&space))
                .unwrap()
        })
    });
    for workers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| {
                let optimizer = DeploymentOptimizer::new().workers(workers);
                b.iter(|| optimizer.run(black_box(&grid), black_box(&space)).unwrap())
            },
        );
    }
    group.finish();
}

/// One-shot wall-clock measurement on the screening-scale workload:
/// the 200-cell grid through the cached model-grid search, serial then
/// with all cores, recorded as configs/s plus the cache counters.
fn report_configs_per_second(_c: &mut Criterion) {
    let grid = ScenarioGrid::screening_200();
    let space = bench_space();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let started = Instant::now();
    let serial = DeploymentOptimizer::new()
        .workers(1)
        .run_serial(&grid, &space)
        .unwrap();
    let t_serial = started.elapsed();

    let started = Instant::now();
    let parallel = DeploymentOptimizer::new()
        .workers(cores)
        .run(&grid, &space)
        .unwrap();
    let t_parallel = started.elapsed();

    assert_eq!(serial, parallel, "parallel run must reproduce serial");
    let configs = serial.candidates_evaluated() as f64;
    let serial_rate = configs / t_serial.as_secs_f64().max(1e-9);
    let parallel_rate = configs / t_parallel.as_secs_f64().max(1e-9);
    let speedup = t_serial.as_secs_f64() / t_parallel.as_secs_f64().max(1e-9);
    println!(
        "optimize200 throughput: serial {serial_rate:.0} configs/s, \
         parallel({cores} workers) {parallel_rate:.0} configs/s -> {speedup:.2}x (identical reports)"
    );
    println!(
        "coverage cache: {} lookups, {} profiles sampled ({:.1} % hit rate)",
        serial.coverage_lookups(),
        serial.profile_evaluations(),
        serial.cache_hit_rate() * 100.0
    );
    // the acceptance property: the memoized cache does at least 2x
    // better than the naive per-step sweep (one profile per lookup)
    assert!(
        serial.coverage_lookups() >= 2 * serial.profile_evaluations(),
        "cache saved less than 2x: {} lookups, {} profiles",
        serial.coverage_lookups(),
        serial.profile_evaluations()
    );
}

criterion_group!(
    name = benches;
    config = short_config();
    targets = bench_serial_vs_parallel, report_configs_per_second
);
criterion_main!(benches);
