//! Rail-network optimizer: searches the deployment frontier of every
//! corridor edge of a network topology and schedules demand-aware sleep
//! at shared stations (greedy minimum-active-set over boundary
//! repeaters), printing the summary, the sleep schedule and the
//! frontier CSV/JSON.
//!
//! ```console
//! $ cargo run --release -p corridor_bench --bin network -- --help
//! $ cargo run --release -p corridor_bench --bin network -- --topology star4
//! $ cargo run --release -p corridor_bench --bin network -- --csv --workers 8 > frontier.csv
//! $ cargo run --release -p corridor_bench --bin network -- --smoke
//! ```
//!
//! Stdout depends only on the options: the frontier rows stream through
//! the `RowSink` layer in edge order whatever `--workers` says, so piped
//! output is byte-reproducible; wall-clock timing goes to stderr.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use corridor_bench::render;
use corridor_core::sink::{RowFormat, WriteSink};
use corridor_core::units::Meters;
use corridor_sim::{CorridorNetwork, IsdSearch, NetworkOptimizer, SearchSpace};

const USAGE: &str = "\
usage: network [options]

options:
  --topology T  line1 | line3 | wye3 (default) | star4 | cycle4
  --isd M       paper (published Section V table, default) | model
                (cached 50 m-step max-ISD search under the link budget)
  --capacity C  aggregate demand one boundary repeater may absorb,
                trains/h (default: 30)
  --sample-step S
                coverage-profile sampling step in metres (default: 10)
  --workers N   worker threads, 0 = auto (default: 0)
  --csv         stream the frontier CSV instead of the summary
  --json        stream the frontier JSON instead of the summary
  --smoke       print the committed network_smoke golden rendering and
                exit (fixed configuration; not combinable)
  --help        this text
";

struct Options {
    topology: String,
    space: SearchSpace,
    capacity: Option<f64>,
    workers: usize,
    csv: bool,
    json: bool,
    smoke: bool,
}

fn parse(mut args: std::env::Args) -> Result<Option<Options>, String> {
    let mut opts = Options {
        topology: "wye3".into(),
        space: SearchSpace::new().sample_step(Meters::new(10.0)),
        capacity: None,
        workers: 0,
        csv: false,
        json: false,
        smoke: false,
    };
    let _ = args.next(); // binary name
    let mut search_options: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        if arg != "--smoke" && arg != "--help" && arg != "-h" {
            search_options.push(arg.clone());
        }
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--topology" => {
                let name = value("--topology")?;
                if CorridorNetwork::by_name(&name).is_none() {
                    return Err(format!("unknown topology {name}"));
                }
                opts.topology = name;
            }
            "--isd" => {
                opts.space = match value("--isd")?.as_str() {
                    "paper" => opts.space.isd_search(IsdSearch::PaperTable),
                    "model" => opts.space.isd_search(IsdSearch::model_paper_grid()),
                    other => return Err(format!("unknown ISD mode {other}")),
                };
            }
            "--capacity" => {
                let cap: f64 = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
                if cap.is_nan() || cap <= 0.0 {
                    return Err("--capacity must be positive".into());
                }
                opts.capacity = Some(cap);
            }
            "--sample-step" => {
                let step: f64 = value("--sample-step")?
                    .parse()
                    .map_err(|e| format!("--sample-step: {e}"))?;
                if step.is_nan() || step <= 0.0 {
                    return Err("--sample-step must be positive".into());
                }
                opts.space = opts.space.sample_step(Meters::new(step));
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--csv" => opts.csv = true,
            "--json" => opts.json = true,
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.smoke && !search_options.is_empty() {
        return Err(format!(
            "--smoke renders the fixed golden configuration and cannot be \
             combined with {}",
            search_options.join(" ")
        ));
    }
    if opts.csv && opts.json {
        return Err("--csv and --json are mutually exclusive".into());
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse(std::env::args()) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("network: {message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if opts.smoke {
        print!("{}", render::network_smoke());
        return ExitCode::SUCCESS;
    }

    let net = CorridorNetwork::by_name(&opts.topology).expect("validated by parse");
    let mut optimizer = NetworkOptimizer::new();
    if opts.workers > 0 {
        optimizer = optimizer.workers(opts.workers);
    }
    if let Some(cap) = opts.capacity {
        optimizer = optimizer.capacity_tph(cap);
    }

    let started = Instant::now();
    if opts.csv || opts.json {
        // stream the frontier rows through the RowSink layer: edge
        // order, byte-identical whatever the worker count
        let format = if opts.csv {
            RowFormat::Csv
        } else {
            RowFormat::Json
        };
        let stdout = std::io::stdout();
        let mut sink = WriteSink::new(std::io::BufWriter::new(stdout.lock()));
        let summary = match optimizer.stream_frontier(&net, &opts.space, format, &mut sink) {
            Ok(summary) => summary,
            Err(err) => {
                eprintln!("network: {err}");
                return ExitCode::FAILURE;
            }
        };
        let mut writer = sink.into_inner();
        if writer.flush().is_err() {
            return ExitCode::FAILURE;
        }
        eprintln!(
            "streamed {} edge(s) in {:.0} ms (workers: {})",
            summary.cells,
            started.elapsed().as_secs_f64() * 1e3,
            if opts.workers == 0 {
                "auto".to_string()
            } else {
                opts.workers.to_string()
            }
        );
        return ExitCode::SUCCESS;
    }

    let report = match optimizer.run(&net, &opts.space) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("network: {err}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();

    println!("Rail-network optimizer — per-edge frontiers + demand-aware sleep");
    println!();
    println!(
        "topology: {} ({} stations, {} edges)  isd: {}",
        opts.topology,
        report.network().station_count(),
        report.network().edge_count(),
        report.isd_search(),
    );
    for (e, pick) in report.picks().iter().enumerate() {
        let edge = report.network().edge(e);
        match pick {
            Some(p) => println!(
                "edge {e} ({}): {} t/h over {:.0} km -> {} nodes @ {:.0} m, \
                 {:.1} Wh/day/km, margin {:.3} dB",
                report.network().edge_name(e),
                edge.demand_tph(),
                edge.length_km_value(),
                p.nodes,
                p.isd.value(),
                p.energy_wh_day_km,
                p.margin_db,
            ),
            None => println!(
                "edge {e} ({}): {} t/h -> unsolvable",
                report.network().edge_name(e),
                edge.demand_tph(),
            ),
        }
    }
    println!();
    println!(
        "sleep schedule: {} boundary repeater(s) sleep, {:.3} Wh/day net saving",
        report.plan().len(),
        report.sleep_saving_wh_day()
    );
    for d in report.plan() {
        println!(
            "  station {} ({}): edge {} sleeps into edge {} \
             (+{} t/h absorbed, net {:.3} Wh/day)",
            d.station,
            report.network().station_name(d.station),
            d.edge,
            d.absorber_edge,
            d.absorbed_demand_tph,
            d.net_wh_day,
        );
    }
    println!(
        "totals: per-corridor {:.3} Wh/day -> network {:.3} Wh/day",
        report.corridor_wh_day(),
        report.network_wh_day()
    );

    eprintln!(
        "searched {} edge(s) in {:.0} ms (workers: {})",
        report.len(),
        elapsed.as_secs_f64() * 1e3,
        if opts.workers == 0 {
            "auto".to_string()
        } else {
            opts.workers.to_string()
        }
    );
    ExitCode::SUCCESS
}
