//! The rail-network graph model: corridor edges sharing stations.
//!
//! A [`CorridorNetwork`] is an undirected multigraph whose **stations**
//! (nodes) are junctions or terminals and whose **edges** are linear
//! corridor segments — each edge carries its own timetable demand,
//! train parameters, physical length and an optional double-track flag
//! that doubles the demand flowing through its stations. Network-wide
//! parameters (service window, repeater spacing, conventional reference
//! ISD, equipment profile, solar climate) are shared by every edge, so a
//! degenerate single-path network expands to exactly the cells a linear
//! [`ScenarioGrid`](crate::ScenarioGrid) sweep would produce — the
//! invariant the differential tests pin byte-for-byte.

use core::fmt;

use corridor_core::{ScenarioError, ScenarioParams};
use corridor_solar::{climate, Location};
use corridor_units::Meters;

use crate::cell::ScenarioCell;
use crate::grid::PowerProfile;

/// Why a network failed to build or validate.
///
/// Graph-shape problems get their own variants; per-edge scenario
/// problems surface as the wrapped [`ScenarioError`] of the offending
/// edge.
#[derive(Debug)]
pub enum NetworkError {
    /// The network has no stations at all.
    Empty,
    /// An edge referenced a station index that does not exist.
    UnknownStation(usize),
    /// An edge connected a station to itself — corridor segments join
    /// *distinct* stations.
    SelfLoop(usize),
    /// Two stations share one id (name); the payload is the index of the
    /// second occurrence. Duplicate ids would make schedule rows and
    /// demand routing ambiguous.
    DuplicateStation(usize),
    /// An edge's physical length is zero, negative or not finite; the
    /// payload is the index the edge would have taken.
    InvalidEdgeLength(usize),
    /// The graph is not connected; the payload is a station unreachable
    /// from station 0.
    Disconnected(usize),
    /// An edge's scenario parameters failed validation.
    Scenario(ScenarioError),
    /// A streaming run stopped early (sink refusal or a worker error).
    Stream(crate::stream::StreamError),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Empty => f.write_str("network has no stations"),
            NetworkError::UnknownStation(i) => {
                write!(f, "edge references unknown station {i}")
            }
            NetworkError::SelfLoop(i) => {
                write!(f, "edge connects station {i} to itself")
            }
            NetworkError::DuplicateStation(i) => {
                write!(f, "station {i} duplicates an earlier station id")
            }
            NetworkError::InvalidEdgeLength(i) => {
                write!(f, "edge {i} has a non-positive or non-finite length")
            }
            NetworkError::Disconnected(i) => {
                write!(f, "network is disconnected: station {i} is unreachable")
            }
            NetworkError::Scenario(e) => write!(f, "edge scenario error: {e}"),
            NetworkError::Stream(e) => write!(f, "network stream error: {e}"),
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetworkError::Scenario(e) => Some(e),
            NetworkError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScenarioError> for NetworkError {
    fn from(e: ScenarioError) -> Self {
        NetworkError::Scenario(e)
    }
}

impl From<crate::stream::StreamError> for NetworkError {
    fn from(e: crate::stream::StreamError) -> Self {
        NetworkError::Stream(e)
    }
}

/// One corridor segment of the network: a linear stretch of track
/// between two stations, with its own timetable demand and train
/// parameters.
///
/// # Examples
///
/// ```
/// use corridor_sim::CorridorEdge;
/// let edge = CorridorEdge::between(0, 1)
///     .trains_per_hour(12.0)
///     .double_track(true);
/// assert_eq!(edge.demand_tph(), 24.0); // double track doubles demand
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CorridorEdge {
    name: Option<String>,
    a: usize,
    b: usize,
    trains_per_hour: f64,
    train_speed_kmh: f64,
    train_length_m: f64,
    length_km: f64,
    double_track: bool,
}

impl CorridorEdge {
    /// A single-track edge between stations `a` and `b` at the paper's
    /// timetable defaults (8 trains/h, 200 km/h, 400 m trains, 10 km
    /// long).
    pub fn between(a: usize, b: usize) -> Self {
        CorridorEdge {
            name: None,
            a,
            b,
            trains_per_hour: 8.0,
            train_speed_kmh: 200.0,
            train_length_m: 400.0,
            length_km: 10.0,
            double_track: false,
        }
    }

    /// Names the edge (defaults to `e<index>` when added unnamed).
    #[must_use]
    pub fn named(mut self, name: &str) -> Self {
        self.name = Some(name.to_owned());
        self
    }

    /// Sets the edge's timetable density per track (trains per service
    /// hour).
    #[must_use]
    pub fn trains_per_hour(mut self, tph: f64) -> Self {
        self.trains_per_hour = tph;
        self
    }

    /// Sets the edge's train speed in km/h.
    #[must_use]
    pub fn train_speed_kmh(mut self, kmh: f64) -> Self {
        self.train_speed_kmh = kmh;
        self
    }

    /// Sets the edge's train length in metres.
    #[must_use]
    pub fn train_length_m(mut self, m: f64) -> Self {
        self.train_length_m = m;
        self
    }

    /// Sets the edge's physical corridor length in km (scales the
    /// per-km frontier energy into the network total).
    #[must_use]
    pub fn length_km(mut self, km: f64) -> Self {
        self.length_km = km;
        self
    }

    /// Marks the edge as double track: two parallel tracks sharing the
    /// trackside deployment, so twice the per-track demand flows through
    /// the edge and its stations.
    #[must_use]
    pub fn double_track(mut self, double: bool) -> Self {
        self.double_track = double;
        self
    }

    /// The station at the first endpoint.
    pub fn a(&self) -> usize {
        self.a
    }

    /// The station at the second endpoint.
    pub fn b(&self) -> usize {
        self.b
    }

    /// The per-track timetable density.
    pub fn tph(&self) -> f64 {
        self.trains_per_hour
    }

    /// The train speed in km/h.
    pub fn speed_kmh(&self) -> f64 {
        self.train_speed_kmh
    }

    /// The train length in metres.
    pub fn train_len_m(&self) -> f64 {
        self.train_length_m
    }

    /// The physical corridor length in km.
    pub fn length_km_value(&self) -> f64 {
        self.length_km
    }

    /// True for a double-track edge.
    pub fn is_double_track(&self) -> bool {
        self.double_track
    }

    /// The aggregate demand the edge's deployment serves: the per-track
    /// density, doubled for double track.
    pub fn demand_tph(&self) -> f64 {
        if self.double_track {
            self.trains_per_hour * 2.0
        } else {
            self.trains_per_hour
        }
    }

    /// True if `station` is one of the edge's endpoints.
    pub fn touches(&self, station: usize) -> bool {
        self.a == station || self.b == station
    }

    /// The endpoint opposite `station` (`None` if the edge does not
    /// touch it).
    pub fn other_end(&self, station: usize) -> Option<usize> {
        if station == self.a {
            Some(self.b)
        } else if station == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// A rail network: stations joined by [`CorridorEdge`]s, plus the
/// network-wide scenario parameters every edge shares.
///
/// # Examples
///
/// ```
/// use corridor_sim::{CorridorEdge, CorridorNetwork};
///
/// let mut net = CorridorNetwork::new();
/// let hub = net.add_station("hub");
/// let east = net.add_station("east");
/// net.add_edge(CorridorEdge::between(hub, east).trains_per_hour(12.0))
///     .unwrap();
/// assert_eq!(net.edge_count(), 1);
/// net.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CorridorNetwork {
    stations: Vec<String>,
    edges: Vec<CorridorEdge>,
    edge_names: Vec<String>,
    service_window_h: f64,
    lp_spacing_m: f64,
    conventional_isd_m: f64,
    profile: PowerProfile,
    location: Location,
}

impl CorridorNetwork {
    /// An empty network at the paper's shared defaults (19 h window,
    /// 200 m repeater spacing, 500 m conventional ISD, the paper power
    /// profile, Berlin climate) — exactly the [`crate::ScenarioGrid`]
    /// defaults, so degenerate paths reproduce grid cells.
    pub fn new() -> Self {
        CorridorNetwork {
            stations: Vec::new(),
            edges: Vec::new(),
            edge_names: Vec::new(),
            service_window_h: 19.0,
            lp_spacing_m: 200.0,
            conventional_isd_m: 500.0,
            profile: PowerProfile::paper(),
            location: climate::berlin(),
        }
    }

    /// Sets the network-wide daily service window in hours.
    #[must_use]
    pub fn service_window_h(mut self, hours: f64) -> Self {
        self.service_window_h = hours;
        self
    }

    /// Sets the network-wide repeater spacing in metres.
    #[must_use]
    pub fn lp_spacing_m(mut self, m: f64) -> Self {
        self.lp_spacing_m = m;
        self
    }

    /// Sets the network-wide conventional reference ISD in metres.
    #[must_use]
    pub fn conventional_isd_m(mut self, m: f64) -> Self {
        self.conventional_isd_m = m;
        self
    }

    /// Sets the network-wide equipment profile.
    #[must_use]
    pub fn power_profile(mut self, profile: PowerProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the network-wide solar climate.
    #[must_use]
    pub fn location(mut self, location: Location) -> Self {
        self.location = location;
        self
    }

    /// The network-wide daily service window in hours.
    pub(crate) fn shared_window_h(&self) -> f64 {
        self.service_window_h
    }

    /// The network-wide repeater spacing in metres.
    pub(crate) fn shared_lp_spacing_m(&self) -> f64 {
        self.lp_spacing_m
    }

    /// The network-wide conventional reference ISD in metres.
    pub(crate) fn shared_conventional_isd_m(&self) -> f64 {
        self.conventional_isd_m
    }

    /// Adds a station and returns its index.
    pub fn add_station(&mut self, name: &str) -> usize {
        self.stations.push(name.to_owned());
        self.stations.len() - 1
    }

    /// Adds an edge and returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownStation`] if either endpoint does
    /// not exist, [`NetworkError::SelfLoop`] if both endpoints are the
    /// same station, or [`NetworkError::InvalidEdgeLength`] if the
    /// edge's physical length is zero, negative or not finite.
    pub fn add_edge(&mut self, edge: CorridorEdge) -> Result<usize, NetworkError> {
        for end in [edge.a, edge.b] {
            if end >= self.stations.len() {
                return Err(NetworkError::UnknownStation(end));
            }
        }
        if edge.a == edge.b {
            return Err(NetworkError::SelfLoop(edge.a));
        }
        if !(edge.length_km.is_finite() && edge.length_km > 0.0) {
            return Err(NetworkError::InvalidEdgeLength(self.edges.len()));
        }
        let index = self.edges.len();
        let name = edge.name.clone().unwrap_or_else(|| format!("e{index}"));
        self.edges.push(edge);
        self.edge_names.push(name);
        Ok(index)
    }

    /// Number of stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The station name at `index`.
    pub fn station_name(&self, index: usize) -> &str {
        &self.stations[index]
    }

    /// The edge at `index`.
    pub fn edge(&self, index: usize) -> &CorridorEdge {
        &self.edges[index]
    }

    /// The edge name at `index` (explicit or the generated `e<index>`).
    pub fn edge_name(&self, index: usize) -> &str {
        &self.edge_names[index]
    }

    /// The edges, in insertion order.
    pub fn edges(&self) -> &[CorridorEdge] {
        &self.edges
    }

    /// Indices of the edges incident to `station`, in insertion order.
    pub fn incident_edges(&self, station: usize) -> Vec<usize> {
        (0..self.edges.len())
            .filter(|&e| self.edges[e].touches(station))
            .collect()
    }

    /// The station's degree (number of incident edges; parallel edges
    /// each count).
    pub fn degree(&self, station: usize) -> usize {
        self.incident_edges(station).len()
    }

    /// Checks the graph is non-empty, free of duplicate station ids and
    /// connected.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::Empty`] for a station-less network,
    /// [`NetworkError::DuplicateStation`] naming the second occurrence
    /// of a repeated station id, or [`NetworkError::Disconnected`]
    /// naming a station unreachable from station 0. A single isolated
    /// station is a valid (degenerate) network.
    pub fn validate(&self) -> Result<(), NetworkError> {
        if self.stations.is_empty() {
            return Err(NetworkError::Empty);
        }
        for (i, name) in self.stations.iter().enumerate() {
            if self.stations[..i].iter().any(|earlier| earlier == name) {
                return Err(NetworkError::DuplicateStation(i));
            }
        }
        // breadth-first sweep from station 0 over the undirected edges
        let mut seen = vec![false; self.stations.len()];
        let mut queue = vec![0usize];
        seen[0] = true;
        while let Some(station) = queue.pop() {
            for edge in &self.edges {
                if let Some(other) = edge.other_end(station) {
                    if !seen[other] {
                        seen[other] = true;
                        queue.push(other);
                    }
                }
            }
        }
        match seen.iter().position(|&s| !s) {
            Some(unreached) => Err(NetworkError::Disconnected(unreached)),
            None => Ok(()),
        }
    }

    /// Builds the scenario of edge `index` at an explicit demand — the
    /// hook the sleep scheduler uses to price a boundary repeater under
    /// its own demand versus own-plus-absorbed demand.
    ///
    /// # Errors
    ///
    /// Returns the [`ScenarioError`] of the failing parameter.
    pub(crate) fn edge_params_with_tph(
        &self,
        index: usize,
        tph: f64,
    ) -> Result<ScenarioParams, ScenarioError> {
        let edge = &self.edges[index];
        ScenarioParams::builder()
            .trains_per_hour(tph)
            .service_window_h(self.service_window_h)
            .train_speed_kmh(edge.train_speed_kmh)
            .train_length_m(edge.train_length_m)
            .lp_spacing_m(self.lp_spacing_m)
            .conventional_isd_m(self.conventional_isd_m)
            .hp_mast(*self.profile.hp())
            .lp_node(*self.profile.lp())
            .build()
    }

    /// Builds the [`ScenarioCell`] of edge `index`: the edge's aggregate
    /// demand and train parameters under the network-wide shared
    /// parameters, with the cell index equal to the edge index. For a
    /// single-path network built from grid-default edges this is
    /// *identical* to the corresponding [`crate::ScenarioGrid`] cell —
    /// the foundation of the differential byte-equality tests.
    ///
    /// # Errors
    ///
    /// Returns the [`ScenarioError`] of the failing parameter.
    pub fn edge_cell(&self, index: usize) -> Result<ScenarioCell, ScenarioError> {
        let edge = &self.edges[index];
        let params = self.edge_params_with_tph(index, edge.demand_tph())?;
        Ok(ScenarioCell::new(
            index,
            params,
            self.location.clone(),
            self.profile.name().to_owned(),
            // mirror the grid's default deployment labels; the search
            // space, not the cell, decides what actually deploys
            10,
            Meters::new(2650.0),
        ))
    }

    /// A linear path: `demands.len()` edges in a chain of
    /// `demands.len() + 1` stations (`s0`, `s1`, …), edge `i` carrying
    /// `demands[i]` trains per hour. `line(&[4.0, 8.0, 12.0])` produces
    /// exactly the cells of the `smoke-3` grid, in order.
    pub fn line(demands: &[f64]) -> Self {
        let mut net = CorridorNetwork::new();
        for i in 0..=demands.len() {
            net.add_station(&format!("s{i}"));
        }
        for (i, &tph) in demands.iter().enumerate() {
            net.add_edge(CorridorEdge::between(i, i + 1).trains_per_hour(tph))
                // corridor-lint: allow(no-panic, reason = "stations 0..=len were added in the loop above, so both endpoints exist")
                .expect("line endpoints exist by construction");
        }
        net
    }

    /// A star junction: one `hub` station with `demands.len()` legs
    /// (`s1`, `s2`, …), leg `i` carrying `demands[i]` trains per hour.
    pub fn star(demands: &[f64]) -> Self {
        let mut net = CorridorNetwork::new();
        let hub = net.add_station("hub");
        for (i, &tph) in demands.iter().enumerate() {
            let leaf = net.add_station(&format!("s{}", i + 1));
            net.add_edge(CorridorEdge::between(hub, leaf).trains_per_hour(tph))
                // corridor-lint: allow(no-panic, reason = "hub and leaf were just added by add_station, so both endpoints exist")
                .expect("star endpoints exist by construction");
        }
        net
    }

    /// A ring of `demands.len()` stations, edge `i` joining station `i`
    /// to station `(i + 1) % n` with `demands[i]` trains per hour.
    /// Requires at least three demands (two stations cannot ring without
    /// parallel edges).
    pub fn cycle(demands: &[f64]) -> Self {
        assert!(demands.len() >= 3, "a cycle needs at least 3 edges");
        let mut net = CorridorNetwork::new();
        for i in 0..demands.len() {
            net.add_station(&format!("s{i}"));
        }
        for (i, &tph) in demands.iter().enumerate() {
            let next = (i + 1) % demands.len();
            net.add_edge(CorridorEdge::between(i, next).trains_per_hour(tph))
                // corridor-lint: allow(no-panic, reason = "stations 0..len were added in the loop above and indices are taken mod len")
                .expect("cycle endpoints exist by construction");
        }
        net
    }

    /// Resolves the topology names shared by the `network` binary and
    /// the smoke golden; `None` for an unknown name.
    ///
    /// * `line1` — one paper-default edge,
    /// * `line3` — the smoke-3 demands 4/8/12 tph in a path,
    /// * `wye3` — a three-leg junction at 4/8/12 tph with the 8 tph leg
    ///   double-tracked (the smoke topology),
    /// * `star4` — four legs at 4/6/8/12 tph,
    /// * `cycle4` — a four-station ring at 4/6/8/10 tph.
    pub fn by_name(name: &str) -> Option<CorridorNetwork> {
        match name {
            "line1" => Some(CorridorNetwork::line(&[8.0])),
            "line3" => Some(CorridorNetwork::line(&[4.0, 8.0, 12.0])),
            "wye3" => {
                let mut net = CorridorNetwork::star(&[4.0, 8.0, 12.0]);
                net.edges[1] = net.edges[1].clone().double_track(true);
                Some(net)
            }
            "star4" => Some(CorridorNetwork::star(&[4.0, 6.0, 8.0, 12.0])),
            "cycle4" => Some(CorridorNetwork::cycle(&[4.0, 6.0, 8.0, 10.0])),
            _ => None,
        }
    }
}

impl Default for CorridorNetwork {
    /// Returns [`CorridorNetwork::new`].
    fn default() -> Self {
        CorridorNetwork::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioGrid;

    #[test]
    fn add_edge_validates_endpoints() {
        let mut net = CorridorNetwork::new();
        let a = net.add_station("a");
        assert!(matches!(
            net.add_edge(CorridorEdge::between(a, 7)),
            Err(NetworkError::UnknownStation(7))
        ));
        assert!(matches!(
            net.add_edge(CorridorEdge::between(a, a)),
            Err(NetworkError::SelfLoop(0))
        ));
        let b = net.add_station("b");
        assert_eq!(net.add_edge(CorridorEdge::between(a, b)).unwrap(), 0);
        assert_eq!(net.edge_name(0), "e0");
    }

    #[test]
    fn add_edge_rejects_degenerate_lengths() {
        let mut net = CorridorNetwork::new();
        let a = net.add_station("a");
        let b = net.add_station("b");
        for km in [0.0, -3.5, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    net.add_edge(CorridorEdge::between(a, b).length_km(km)),
                    Err(NetworkError::InvalidEdgeLength(0))
                ),
                "length {km} must be rejected"
            );
        }
        assert_eq!(net.edge_count(), 0, "rejected edges must not be kept");
        net.add_edge(CorridorEdge::between(a, b).length_km(0.5))
            .unwrap();
    }

    #[test]
    fn validate_rejects_duplicate_station_ids() {
        let mut net = CorridorNetwork::new();
        let a = net.add_station("hub");
        let b = net.add_station("east");
        net.add_edge(CorridorEdge::between(a, b)).unwrap();
        net.validate().unwrap();
        let dup = net.add_station("hub");
        net.add_edge(CorridorEdge::between(b, dup)).unwrap();
        assert!(matches!(
            net.validate(),
            Err(NetworkError::DuplicateStation(i)) if i == dup
        ));
    }

    #[test]
    fn validate_flags_empty_and_disconnected() {
        assert!(matches!(
            CorridorNetwork::new().validate(),
            Err(NetworkError::Empty)
        ));
        // single isolated station: trivially connected
        let mut single = CorridorNetwork::new();
        single.add_station("only");
        single.validate().unwrap();
        // two components
        let mut net = CorridorNetwork::new();
        let a = net.add_station("a");
        let b = net.add_station("b");
        net.add_edge(CorridorEdge::between(a, b)).unwrap();
        let c = net.add_station("island");
        assert!(matches!(net.validate(), Err(NetworkError::Disconnected(i)) if i == c));
    }

    #[test]
    fn topology_constructors_have_expected_shape() {
        let line = CorridorNetwork::line(&[4.0, 8.0, 12.0]);
        assert_eq!(line.station_count(), 4);
        assert_eq!(line.edge_count(), 3);
        line.validate().unwrap();
        assert_eq!(line.degree(0), 1);
        assert_eq!(line.degree(1), 2);

        let star = CorridorNetwork::star(&[4.0, 8.0, 12.0]);
        assert_eq!(star.station_count(), 4);
        assert_eq!(star.degree(0), 3);
        assert_eq!(star.incident_edges(0), vec![0, 1, 2]);
        star.validate().unwrap();

        let cycle = CorridorNetwork::cycle(&[4.0, 6.0, 8.0, 10.0]);
        assert_eq!(cycle.station_count(), 4);
        assert_eq!(cycle.edge_count(), 4);
        for station in 0..4 {
            assert_eq!(cycle.degree(station), 2);
        }
        cycle.validate().unwrap();
    }

    #[test]
    fn double_track_doubles_demand() {
        let edge = CorridorEdge::between(0, 1).trains_per_hour(8.0);
        assert_eq!(edge.demand_tph(), 8.0);
        assert_eq!(edge.double_track(true).demand_tph(), 16.0);
    }

    #[test]
    fn line_cells_match_grid_cells_exactly() {
        let net = CorridorNetwork::line(&[4.0, 8.0, 12.0]);
        let grid_cells = ScenarioGrid::smoke_3().expand().unwrap();
        for (i, grid_cell) in grid_cells.iter().enumerate() {
            assert_eq!(&net.edge_cell(i).unwrap(), grid_cell, "edge {i}");
        }
    }

    #[test]
    fn named_topologies_resolve() {
        assert_eq!(CorridorNetwork::by_name("line1").unwrap().edge_count(), 1);
        assert_eq!(CorridorNetwork::by_name("line3").unwrap().edge_count(), 3);
        let wye = CorridorNetwork::by_name("wye3").unwrap();
        assert_eq!(wye.edge_count(), 3);
        assert!(wye.edge(1).is_double_track());
        assert_eq!(wye.edge(1).demand_tph(), 16.0);
        assert_eq!(CorridorNetwork::by_name("star4").unwrap().edge_count(), 4);
        assert_eq!(CorridorNetwork::by_name("cycle4").unwrap().edge_count(), 4);
        assert!(CorridorNetwork::by_name("nope").is_none());
    }

    #[test]
    fn error_displays() {
        assert!(NetworkError::Empty.to_string().contains("no stations"));
        assert!(NetworkError::UnknownStation(3).to_string().contains("3"));
        assert!(NetworkError::SelfLoop(1).to_string().contains("itself"));
        assert!(NetworkError::Disconnected(2)
            .to_string()
            .contains("unreachable"));
        assert!(NetworkError::DuplicateStation(4)
            .to_string()
            .contains("duplicates"));
        assert!(NetworkError::InvalidEdgeLength(1)
            .to_string()
            .contains("length"));
        let wrapped: NetworkError = ScenarioError::InvalidServiceWindow.into();
        assert!(wrapped.to_string().contains("service window"));
        assert!(std::error::Error::source(&wrapped).is_some());
    }

    #[test]
    fn invalid_shared_window_propagates_through_edge_cell() {
        let net = CorridorNetwork::line(&[8.0]).service_window_h(f64::NAN);
        assert_eq!(
            net.edge_cell(0).unwrap_err(),
            ScenarioError::InvalidServiceWindow
        );
    }
}
