//! Minimal fixed-width table rendering for the reproduction binaries.

use core::fmt::Write as _;

/// A fixed-width text table with a header row.
///
/// # Examples
///
/// ```
/// use corridor_core::report::TextTable;
/// let mut t = TextTable::new(vec!["n".into(), "ISD [m]".into()]);
/// t.add_row(vec!["1".into(), "1250".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("ISD [m]"));
/// assert!(rendered.contains("1250"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width does not match header"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table holds no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with right-aligned columns and a separator line.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (columns - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a fraction as a percentage with the given decimals.
pub fn pct(fraction: f64, decimals: usize) -> String {
    format!("{:.decimals$} %", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a".into(), "bbbb".into()]);
        t.add_row(vec!["100".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "  a  bbbb");
        assert_eq!(lines[2], "100     2");
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(vec!["x".into()]);
        assert!(t.is_empty());
        t.add_row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5734, 1), "57.3 %");
        assert_eq!(pct(0.0285, 2), "2.85 %");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_rejected() {
        let _ = TextTable::new(Vec::new());
    }
}
