//! 5G NR link budget for linear railway cells.
//!
//! This crate implements the paper's signal model (Section III-A):
//!
//! * [`NrCarrier`] — carrier bandwidth and subcarrier accounting, converting
//!   total EIRP to per-subcarrier reference signal transmit power (RSTP);
//! * [`SignalSource`] — a transmitter (high-power RRH or low-power repeater)
//!   at a track position with its own calibrated path-loss model, optionally
//!   re-emitting amplified noise (repeaters);
//! * [`SnrModel`] — paper eq. (2): combines all sources and noise
//!   contributions into the SNR at any track position;
//! * [`ThroughputModel`] — the calibrated Shannon bound of 3GPP TR 36.942
//!   (α = 0.6, ThrMAX = 5.84 bps/Hz for 5G NR);
//! * [`CoverageProfile`] — a sampled SNR/throughput profile along the track
//!   with summary statistics.
//!
//! # Examples
//!
//! ```
//! use corridor_link::{NrCarrier, SignalSource, SnrModel, ThroughputModel};
//! use corridor_propagation::CalibratedFriis;
//! use corridor_units::{Db, Dbm, Hertz, Meters, Watts};
//!
//! let carrier = NrCarrier::paper_100mhz();
//! let hp_model = CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(33.0));
//! let rstp = carrier.per_subcarrier(Dbm::from_watts(Watts::new(2500.0)));
//!
//! let model = SnrModel::new(carrier)
//!     .with_source(SignalSource::new(Meters::ZERO, rstp, hp_model))
//!     .with_source(SignalSource::new(Meters::new(500.0), rstp, hp_model));
//!
//! let snr = model.snr_at(Meters::new(250.0)).unwrap();
//! let thr = ThroughputModel::nr_default();
//! assert!(thr.spectral_efficiency(snr) > 5.8); // peak rate at mid-cell
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod carrier;
mod profile;
mod snr;
mod source;
mod throughput;
mod uplink;

pub use carrier::NrCarrier;
pub use profile::{CoverageProfile, ProfileSample};
pub use snr::SnrModel;
pub use source::SignalSource;
pub use throughput::ThroughputModel;
pub use uplink::UplinkBudget;
