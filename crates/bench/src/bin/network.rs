//! Rail-network optimizer: searches the deployment frontier of every
//! corridor edge of a network topology and schedules demand-aware sleep
//! at shared stations (greedy minimum-active-set over boundary
//! repeaters, and — under `--margin-floor` — the full Pollakis search
//! that trades interior coverage margin for sleep), printing the
//! summary, the sleep schedule and the frontier CSV/JSON. With
//! `--simulate` it switches to the time-domain backend: edge demands
//! are decomposed into junction-crossing routes and every edge replays
//! seeded stochastic days through the shared-itinerary event engine.
//!
//! ```console
//! $ cargo run --release -p corridor_bench --bin network -- --help
//! $ cargo run --release -p corridor_bench --bin network -- --topology star4
//! $ cargo run --release -p corridor_bench --bin network -- --margin-floor -3
//! $ cargo run --release -p corridor_bench --bin network -- --simulate --reps 50 --seed 7
//! $ cargo run --release -p corridor_bench --bin network -- --csv --workers 8 > frontier.csv
//! $ cargo run --release -p corridor_bench --bin network -- --smoke
//! ```
//!
//! Stdout depends only on the options: the frontier and day rows stream
//! through the `RowSink` layer in edge order whatever `--workers` says,
//! so piped output is byte-reproducible; wall-clock timing goes to
//! stderr.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use corridor_bench::render;
use corridor_core::sink::{RowFormat, WriteSink};
use corridor_core::units::Meters;
use corridor_sim::{CorridorNetwork, IsdSearch, NetworkDayEngine, NetworkOptimizer, SearchSpace};

const USAGE: &str = "\
usage: network [options]

options:
  --topology T  line1 | line3 | wye3 (default) | star4 | cycle4
  --isd M       paper (published Section V table, default) | model
                (cached 50 m-step max-ISD search under the link budget)
  --capacity C  aggregate demand one boundary repeater may absorb,
                trains/h (default: 30)
  --margin-floor F
                enable margin-trading sleep: interior repeaters may
                sleep while every edge's residual coverage margin stays
                >= F dB (default: off, boundary-only schedule)
  --sample-step S
                coverage-profile sampling step in metres (default: 10)
  --workers N   worker threads, 0 = auto (default: 0)
  --simulate    replay stochastic network days through the time-domain
                backend (routed itineraries, junction-consistent) and
                report per-edge Monte-Carlo statistics
  --reps N      replications per edge under --simulate (default: 20)
  --seed S      master seed of the day sampler under --simulate
                (default: 42)
  --csv         stream the frontier (or day) CSV instead of the summary
  --json        stream the frontier (or day) JSON instead of the summary
  --smoke       print the committed network_smoke golden rendering and
                exit (fixed configuration; not combinable)
  --help        this text
";

struct Options {
    topology: String,
    space: SearchSpace,
    capacity: Option<f64>,
    margin_floor: Option<f64>,
    workers: usize,
    simulate: bool,
    reps: Option<usize>,
    seed: Option<u64>,
    csv: bool,
    json: bool,
    smoke: bool,
}

fn parse(mut args: std::env::Args) -> Result<Option<Options>, String> {
    let mut opts = Options {
        topology: "wye3".into(),
        space: SearchSpace::new().sample_step(Meters::new(10.0)),
        capacity: None,
        margin_floor: None,
        workers: 0,
        simulate: false,
        reps: None,
        seed: None,
        csv: false,
        json: false,
        smoke: false,
    };
    let _ = args.next(); // binary name
    let mut search_options: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        if arg != "--smoke" && arg != "--help" && arg != "-h" {
            search_options.push(arg.clone());
        }
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--topology" => {
                let name = value("--topology")?;
                if CorridorNetwork::by_name(&name).is_none() {
                    return Err(format!("unknown topology {name}"));
                }
                opts.topology = name;
            }
            "--isd" => {
                opts.space = match value("--isd")?.as_str() {
                    "paper" => opts.space.isd_search(IsdSearch::PaperTable),
                    "model" => opts.space.isd_search(IsdSearch::model_paper_grid()),
                    other => return Err(format!("unknown ISD mode {other}")),
                };
            }
            "--capacity" => {
                let cap: f64 = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
                if cap.is_nan() || cap <= 0.0 {
                    return Err("--capacity must be positive".into());
                }
                opts.capacity = Some(cap);
            }
            "--margin-floor" => {
                let floor: f64 = value("--margin-floor")?
                    .parse()
                    .map_err(|e| format!("--margin-floor: {e}"))?;
                if !floor.is_finite() {
                    return Err("--margin-floor must be finite".into());
                }
                opts.margin_floor = Some(floor);
            }
            "--simulate" => opts.simulate = true,
            "--reps" => {
                let reps: usize = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if reps == 0 {
                    return Err("--reps must be positive".into());
                }
                opts.reps = Some(reps);
            }
            "--seed" => {
                opts.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                );
            }
            "--sample-step" => {
                let step: f64 = value("--sample-step")?
                    .parse()
                    .map_err(|e| format!("--sample-step: {e}"))?;
                if step.is_nan() || step <= 0.0 {
                    return Err("--sample-step must be positive".into());
                }
                opts.space = opts.space.sample_step(Meters::new(step));
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--csv" => opts.csv = true,
            "--json" => opts.json = true,
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.smoke && !search_options.is_empty() {
        return Err(format!(
            "--smoke renders the fixed golden configuration and cannot be \
             combined with {}",
            search_options.join(" ")
        ));
    }
    if opts.csv && opts.json {
        return Err("--csv and --json are mutually exclusive".into());
    }
    if !opts.simulate && (opts.reps.is_some() || opts.seed.is_some()) {
        return Err("--reps/--seed only apply to --simulate".into());
    }
    if opts.simulate && opts.margin_floor.is_some() {
        return Err(
            "--simulate prices the deployment picks before any margin is traded; \
             drop --margin-floor"
                .into(),
        );
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse(std::env::args()) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("network: {message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if opts.smoke {
        print!("{}", render::network_smoke());
        return ExitCode::SUCCESS;
    }

    let net = CorridorNetwork::by_name(&opts.topology).expect("validated by parse");
    if opts.simulate {
        return simulate(&opts, &net);
    }
    let mut optimizer = NetworkOptimizer::new();
    if opts.workers > 0 {
        optimizer = optimizer.workers(opts.workers);
    }
    if let Some(cap) = opts.capacity {
        optimizer = optimizer.capacity_tph(cap);
    }
    if let Some(floor) = opts.margin_floor {
        optimizer = optimizer.margin_floor_db(floor);
    }

    let started = Instant::now();
    if opts.csv || opts.json {
        // stream the frontier rows through the RowSink layer: edge
        // order, byte-identical whatever the worker count
        let format = if opts.csv {
            RowFormat::Csv
        } else {
            RowFormat::Json
        };
        let stdout = std::io::stdout();
        let mut sink = WriteSink::new(std::io::BufWriter::new(stdout.lock()));
        let summary = match optimizer.stream_frontier(&net, &opts.space, format, &mut sink) {
            Ok(summary) => summary,
            Err(err) => {
                eprintln!("network: {err}");
                return ExitCode::FAILURE;
            }
        };
        let mut writer = sink.into_inner();
        if writer.flush().is_err() {
            return ExitCode::FAILURE;
        }
        eprintln!(
            "streamed {} edge(s) in {:.0} ms (workers: {})",
            summary.cells,
            started.elapsed().as_secs_f64() * 1e3,
            if opts.workers == 0 {
                "auto".to_string()
            } else {
                opts.workers.to_string()
            }
        );
        return ExitCode::SUCCESS;
    }

    let report = match optimizer.run(&net, &opts.space) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("network: {err}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();

    println!("Rail-network optimizer — per-edge frontiers + demand-aware sleep");
    println!();
    println!(
        "topology: {} ({} stations, {} edges)  isd: {}",
        opts.topology,
        report.network().station_count(),
        report.network().edge_count(),
        report.isd_search(),
    );
    for (e, pick) in report.picks().iter().enumerate() {
        let edge = report.network().edge(e);
        match pick {
            Some(p) => println!(
                "edge {e} ({}): {} t/h over {:.0} km -> {} nodes @ {:.0} m, \
                 {:.1} Wh/day/km, margin {:.3} dB",
                report.network().edge_name(e),
                edge.demand_tph(),
                edge.length_km_value(),
                p.nodes,
                p.isd.value(),
                p.energy_wh_day_km,
                p.margin_db,
            ),
            None => println!(
                "edge {e} ({}): {} t/h -> unsolvable",
                report.network().edge_name(e),
                edge.demand_tph(),
            ),
        }
    }
    println!();
    match opts.margin_floor {
        None => println!(
            "sleep schedule: {} boundary repeater(s) sleep, {:.3} Wh/day net saving",
            report.plan().len(),
            report.sleep_saving_wh_day()
        ),
        Some(floor) => {
            let interior = report
                .plan()
                .iter()
                .filter(|d| d.repeater.is_some())
                .count();
            println!(
                "sleep schedule ({floor} dB floor): {} boundary + {interior} interior \
                 repeater(s) sleep, {:.3} Wh/day net saving",
                report.plan().len() - interior,
                report.sleep_saving_wh_day()
            );
        }
    }
    for d in report.plan() {
        match d.repeater {
            None => println!(
                "  station {} ({}): edge {} sleeps into edge {} \
                 (+{} t/h absorbed, net {:.3} Wh/day)",
                d.station,
                report.network().station_name(d.station),
                d.edge,
                d.absorber_edge,
                d.absorbed_demand_tph,
                d.net_wh_day,
            ),
            Some(k) => println!(
                "  edge {} ({}): interior repeater {k} sleeps into its neighbor \
                 (margin cost {:.3} dB, net {:.3} Wh/day)",
                d.edge,
                report.network().edge_name(d.edge),
                d.margin_cost_db,
                d.net_wh_day,
            ),
        }
    }
    if opts.margin_floor.is_some() {
        let margins: Vec<String> = report
            .residual_margins()
            .iter()
            .enumerate()
            .map(|(e, m)| match m {
                Some(m) => format!("{} {:.3} dB", report.network().edge_name(e), m),
                None => format!("{} n/a", report.network().edge_name(e)),
            })
            .collect();
        println!("residual margins: {}", margins.join(", "));
    }
    println!(
        "totals: per-corridor {:.3} Wh/day -> network {:.3} Wh/day",
        report.corridor_wh_day(),
        report.network_wh_day()
    );

    eprintln!(
        "searched {} edge(s) in {:.0} ms (workers: {})",
        report.len(),
        elapsed.as_secs_f64() * 1e3,
        if opts.workers == 0 {
            "auto".to_string()
        } else {
            opts.workers.to_string()
        }
    );
    ExitCode::SUCCESS
}

/// The `--simulate` path: decomposes the edge demands into routes,
/// replays seeded stochastic days through the time-domain backend and
/// prints the per-edge Monte-Carlo summary (or streams the day rows).
fn simulate(opts: &Options, net: &CorridorNetwork) -> ExitCode {
    let mut engine = NetworkDayEngine::new();
    if opts.workers > 0 {
        engine = engine.workers(opts.workers);
    }
    if let Some(reps) = opts.reps {
        engine = engine.reps(reps);
    }
    if let Some(seed) = opts.seed {
        engine = engine.seed(seed);
    }
    let workers_label = if opts.workers == 0 {
        "auto".to_string()
    } else {
        opts.workers.to_string()
    };

    let started = Instant::now();
    if opts.csv || opts.json {
        let format = if opts.csv {
            RowFormat::Csv
        } else {
            RowFormat::Json
        };
        let stdout = std::io::stdout();
        let mut sink = WriteSink::new(std::io::BufWriter::new(stdout.lock()));
        let summary = match engine.stream(net, &opts.space, format, &mut sink) {
            Ok(summary) => summary,
            Err(err) => {
                eprintln!("network: {err}");
                return ExitCode::FAILURE;
            }
        };
        let mut writer = sink.into_inner();
        if writer.flush().is_err() {
            return ExitCode::FAILURE;
        }
        eprintln!(
            "streamed {} day row(s) in {:.0} ms (workers: {workers_label})",
            summary.cells,
            started.elapsed().as_secs_f64() * 1e3,
        );
        return ExitCode::SUCCESS;
    }

    let report = match engine.run(net, &opts.space) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("network: {err}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();

    println!("Rail-network day simulator — routed itineraries, junction-consistent days");
    println!();
    println!(
        "topology: {} ({} stations, {} edges)  reps: {}  seed: {}",
        opts.topology,
        report.network().station_count(),
        report.network().edge_count(),
        report.reps(),
        report.seed(),
    );
    println!(
        "routes: {} ({} junction-crossing), mean {:.1} crossings/day",
        report.routes().len(),
        report
            .routes()
            .iter()
            .filter(|r| r.legs().len() >= 2)
            .count(),
        report.crossings_per_day(),
    );
    for s in report.per_edge() {
        println!(
            "edge {} ({}): {} t/h over {} route(s) -> {} nodes @ {:.0} m, \
             {:.3} +/- {:.3} Wh/day ({:.2} passes, {:.2} wakes per day)",
            s.edge,
            report.network().edge_name(s.edge),
            s.demand_tph,
            s.routes,
            s.nodes,
            s.isd_m,
            s.mean_wh_day,
            s.ci95_wh_day,
            s.mean_passes,
            s.mean_wakes,
        );
    }
    println!();
    println!(
        "network: {:.3} Wh/day (sum of per-edge means)",
        report.network_mean_wh_day()
    );

    eprintln!(
        "simulated {} edge-day(s) in {:.0} ms (workers: {workers_label})",
        report.per_edge().len() * report.reps(),
        elapsed.as_secs_f64() * 1e3,
    );
    ExitCode::SUCCESS
}
