//! Train timetables: deterministic and stochastic.

use corridor_units::{Hours, Seconds};
use rand::Rng;

use crate::{Train, TrainPass};

/// The paper's deterministic service pattern: a fixed number of trains per
/// hour, evenly spaced, during a service window; no traffic for the rest of
/// the day (the "5 h per night" pause of Table III).
///
/// # Examples
///
/// ```
/// use corridor_traffic::Timetable;
/// let t = Timetable::paper_default();
/// assert_eq!(t.passes().len(), 152); // 8 trains/h × 19 h
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Timetable {
    trains_per_hour: f64,
    service_window: Hours,
    service_start: Seconds,
    train: Train,
}

impl Timetable {
    /// Paper Table III: 8 trains/h over a 19 h service day (5 h night
    /// pause), 400 m trains at 200 km/h, service starting at 05:00.
    pub fn paper_default() -> Self {
        Timetable {
            trains_per_hour: 8.0,
            service_window: Hours::new(19.0),
            service_start: Hours::new(5.0).seconds(),
            train: Train::paper_default(),
        }
    }

    /// Creates a timetable.
    ///
    /// # Panics
    ///
    /// Panics if `trains_per_hour` is not strictly positive or the service
    /// window is not within (0, 24] hours.
    pub fn new(
        trains_per_hour: f64,
        service_window: Hours,
        service_start: Seconds,
        train: Train,
    ) -> Self {
        assert!(trains_per_hour > 0.0, "trains per hour must be positive");
        assert!(
            service_window.value() > 0.0 && service_window.value() <= 24.0,
            "service window must be in (0, 24] hours"
        );
        Timetable {
            trains_per_hour,
            service_window,
            service_start,
            train,
        }
    }

    /// Trains per service hour.
    pub fn trains_per_hour(&self) -> f64 {
        self.trains_per_hour
    }

    /// Length of the daily service window.
    pub fn service_window(&self) -> Hours {
        self.service_window
    }

    /// Time of day at which service begins.
    pub fn service_start(&self) -> Seconds {
        self.service_start
    }

    /// The rolling stock.
    pub fn train(&self) -> Train {
        self.train
    }

    /// Number of trains per day.
    pub fn trains_per_day(&self) -> usize {
        (self.trains_per_hour * self.service_window.value()).round() as usize
    }

    /// The day's train passes, evenly spaced across the service window.
    pub fn passes(&self) -> Vec<TrainPass> {
        let n = self.trains_per_day();
        let headway = Seconds::new(3600.0 / self.trains_per_hour);
        (0..n)
            .map(|i| TrainPass::new(self.train, self.service_start + headway * i as f64))
            .collect()
    }
}

impl Default for Timetable {
    /// Returns [`Timetable::paper_default`].
    fn default() -> Self {
        Timetable::paper_default()
    }
}

/// A stochastic timetable: Poisson arrivals at a mean rate over the service
/// window, for sensitivity analysis of the deterministic results.
///
/// # Examples
///
/// ```
/// use corridor_traffic::PoissonTimetable;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let t = PoissonTimetable::paper_rate();
/// let passes = t.sample_passes(&mut rng);
/// // mean 152 trains/day; a seeded draw is within wide bounds
/// assert!(passes.len() > 100 && passes.len() < 210);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PoissonTimetable {
    rate_per_hour: f64,
    service_window: Hours,
    service_start: Seconds,
    train: Train,
}

impl PoissonTimetable {
    /// Poisson arrivals matching the paper's mean rate (8 trains/h, 19 h).
    pub fn paper_rate() -> Self {
        PoissonTimetable {
            rate_per_hour: 8.0,
            service_window: Hours::new(19.0),
            service_start: Hours::new(5.0).seconds(),
            train: Train::paper_default(),
        }
    }

    /// Creates a Poisson timetable.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Timetable::new`].
    pub fn new(
        rate_per_hour: f64,
        service_window: Hours,
        service_start: Seconds,
        train: Train,
    ) -> Self {
        assert!(rate_per_hour > 0.0, "rate must be positive");
        assert!(
            service_window.value() > 0.0 && service_window.value() <= 24.0,
            "service window must be in (0, 24] hours"
        );
        PoissonTimetable {
            rate_per_hour,
            service_window,
            service_start,
            train,
        }
    }

    /// Mean arrivals per hour.
    pub fn rate_per_hour(&self) -> f64 {
        self.rate_per_hour
    }

    /// Length of the daily service window.
    pub fn service_window(&self) -> Hours {
        self.service_window
    }

    /// Time of day at which service begins.
    pub fn service_start(&self) -> Seconds {
        self.service_start
    }

    /// The rolling stock.
    pub fn train(&self) -> Train {
        self.train
    }

    /// Samples one day of passes using exponential inter-arrival times.
    pub fn sample_passes<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<TrainPass> {
        let mean_gap = 3600.0 / self.rate_per_hour;
        let window_s = self.service_window.seconds().value();
        let mut passes = Vec::new();
        let mut t = 0.0;
        loop {
            // inverse-CDF sample of Exp(1/mean_gap)
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -mean_gap * u.ln();
            if t > window_s {
                break;
            }
            passes.push(TrainPass::new(
                self.train,
                self.service_start + Seconds::new(t),
            ));
        }
        passes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_timetable_counts() {
        let t = Timetable::paper_default();
        assert_eq!(t.trains_per_day(), 152);
        let passes = t.passes();
        assert_eq!(passes.len(), 152);
        // headway 450 s
        let gap = passes[1].origin_time() - passes[0].origin_time();
        assert!((gap.value() - 450.0).abs() < 1e-9);
        // first train at 05:00
        assert_eq!(passes[0].origin_time(), Seconds::new(18_000.0));
    }

    #[test]
    fn all_passes_inside_service_window() {
        let t = Timetable::paper_default();
        let end = t.service_start() + t.service_window().seconds();
        for p in t.passes() {
            assert!(p.origin_time() >= t.service_start());
            assert!(p.origin_time() < end);
        }
    }

    #[test]
    fn fractional_rates_round() {
        let t = Timetable::new(2.5, Hours::new(10.0), Seconds::ZERO, Train::paper_default());
        assert_eq!(t.trains_per_day(), 25);
    }

    #[test]
    fn accessors() {
        let t = Timetable::paper_default();
        assert_eq!(t.trains_per_hour(), 8.0);
        assert_eq!(t.service_window(), Hours::new(19.0));
        assert_eq!(t.train(), Train::paper_default());
        assert_eq!(Timetable::default(), t);
    }

    #[test]
    fn poisson_mean_close_to_rate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let t = PoissonTimetable::paper_rate();
        let total: usize = (0..200).map(|_| t.sample_passes(&mut rng).len()).sum();
        let mean = total as f64 / 200.0;
        assert!((mean - 152.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn poisson_passes_sorted_and_in_window() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = PoissonTimetable::paper_rate();
        let passes = t.sample_passes(&mut rng);
        let end = Seconds::new(18_000.0) + Hours::new(19.0).seconds();
        for w in passes.windows(2) {
            assert!(w[0].origin_time() < w[1].origin_time());
        }
        for p in &passes {
            assert!(p.origin_time() >= Seconds::new(18_000.0));
            assert!(p.origin_time() <= end);
        }
    }

    #[test]
    fn poisson_reproducible_with_seed() {
        let t = PoissonTimetable::paper_rate();
        let a = t.sample_passes(&mut rand::rngs::StdRng::seed_from_u64(9));
        let b = t.sample_passes(&mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.origin_time(), y.origin_time());
        }
    }

    #[test]
    #[should_panic(expected = "trains per hour must be positive")]
    fn zero_rate_rejected() {
        let _ = Timetable::new(0.0, Hours::new(19.0), Seconds::ZERO, Train::paper_default());
    }

    #[test]
    #[should_panic(expected = "service window")]
    fn oversized_window_rejected() {
        let _ = Timetable::new(8.0, Hours::new(25.0), Seconds::ZERO, Train::paper_default());
    }
}
