//! Minimal, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses.
//!
//! The build environment is offline, so the real `rand` cannot be fetched
//! from crates.io. This shim provides a deterministic, seedable generator
//! ([`rngs::StdRng`], a SplitMix64 core) and the tiny API surface the
//! workspace relies on: [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over half-open ranges.
//!
//! The streams are *not* bit-compatible with the real `rand`; everything
//! in the workspace that consumes randomness treats the stream as an
//! opaque reproducible source, so only determinism matters.
//!
//! # Examples
//!
//! ```
//! use rand::{Rng, SeedableRng};
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let x: f64 = rng.gen_range(-1.0..1.0);
//! assert!((-1.0..1.0).contains(&x));
//! // same seed, same stream
//! let mut again = rand::rngs::StdRng::seed_from_u64(42);
//! assert_eq!(again.gen_range(-1.0..1.0), x);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from the half-open range `low..high`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_in(range, self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// A generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range given one
/// raw 64-bit draw.
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps `raw` (uniform over `u64`) into `range`.
    fn sample_in(range: Range<Self>, raw: u64) -> Self;
}

impl SampleUniform for f64 {
    fn sample_in(range: Range<Self>, raw: u64) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        // 53 high bits -> uniform in [0, 1)
        let unit = (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = range.start + (range.end - range.start) * unit;
        // guard against rounding up to the excluded endpoint
        if x < range.end {
            x
        } else {
            range.start
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_in(range: Range<Self>, raw: u64) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end - range.start) as u64;
                range.start + (raw % span) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    /// A deterministic SplitMix64 generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let a1: f64 = StdRng::seed_from_u64(7).gen_range(0.0..1.0);
        assert_ne!(a1, c.gen_range(0.0..1.0));
    }

    #[test]
    fn float_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn integer_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn mean_is_roughly_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
