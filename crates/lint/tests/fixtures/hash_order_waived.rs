//! Fixture: a reasoned waiver suppresses the hash-order rule.

// corridor-lint: allow(hash-order, reason = "map is key-probed only, never iterated; order cannot escape")
use std::collections::HashMap;

pub type Cache = HashMap<String, u64>;
