//! Fixture tests: every rule is pinned by a triggering, a waived and a
//! clean source file under `tests/fixtures/`, so a matcher regression
//! (rule stops firing, waiver stops suppressing, clean code starts
//! flagging) fails `cargo test` immediately. The waiver hygiene rules
//! (`unknown-rule`, `missing-reason`, `bad-waiver`) get their own
//! fixtures at the bottom.

use corridor_lint::check_source;
use corridor_lint::rules::Scope;

/// Rule ids of every diagnostic in `src` under the given scope.
fn ids(src: &str, scope: Scope) -> Vec<&'static str> {
    check_source("fixture.rs", src, scope)
        .diagnostics
        .iter()
        .map(|d| d.rule_id)
        .collect()
}

/// `(rule id, trigger fixture, waived fixture, clean fixture)` — one row
/// per rule in the catalogue.
const CASES: [(&str, &str, &str, &str); 6] = [
    (
        "float-ord",
        include_str!("fixtures/float_ord_trigger.rs"),
        include_str!("fixtures/float_ord_waived.rs"),
        include_str!("fixtures/float_ord_clean.rs"),
    ),
    (
        "no-panic",
        include_str!("fixtures/no_panic_trigger.rs"),
        include_str!("fixtures/no_panic_waived.rs"),
        include_str!("fixtures/no_panic_clean.rs"),
    ),
    (
        "hash-order",
        include_str!("fixtures/hash_order_trigger.rs"),
        include_str!("fixtures/hash_order_waived.rs"),
        include_str!("fixtures/hash_order_clean.rs"),
    ),
    (
        "wall-clock",
        include_str!("fixtures/wall_clock_trigger.rs"),
        include_str!("fixtures/wall_clock_waived.rs"),
        include_str!("fixtures/wall_clock_clean.rs"),
    ),
    (
        "unsafe-code",
        include_str!("fixtures/unsafe_code_trigger.rs"),
        include_str!("fixtures/unsafe_code_waived.rs"),
        include_str!("fixtures/unsafe_code_clean.rs"),
    ),
    (
        "float-key-cast",
        include_str!("fixtures/float_key_cast_trigger.rs"),
        include_str!("fixtures/float_key_cast_waived.rs"),
        include_str!("fixtures/float_key_cast_clean.rs"),
    ),
];

#[test]
fn every_rule_fires_on_its_trigger_fixture() {
    for (rule, trigger, _, _) in CASES {
        let found = ids(trigger, Scope::Library);
        assert!(
            found.contains(&rule),
            "{rule}: trigger fixture produced {found:?}"
        );
    }
}

#[test]
fn every_rule_is_suppressed_by_a_reasoned_waiver() {
    for (rule, _, waived, _) in CASES {
        let findings = check_source("fixture.rs", waived, Scope::Library);
        assert!(
            findings.diagnostics.is_empty(),
            "{rule}: waived fixture still produced {:?}",
            findings.diagnostics
        );
        assert_eq!(findings.waivers.len(), 1, "{rule}: expected one waiver");
        assert!(findings.waivers[0].used, "{rule}: waiver went unused");
        assert!(
            findings.waivers[0].reason.is_some(),
            "{rule}: waiver lost its reason"
        );
    }
}

#[test]
fn every_rule_stays_silent_on_its_clean_fixture() {
    for (rule, _, _, clean) in CASES {
        let found = ids(clean, Scope::Library);
        assert!(found.is_empty(), "{rule}: clean fixture produced {found:?}");
    }
}

#[test]
fn harness_scope_skips_panic_and_clock_rules_but_keeps_determinism() {
    // Timing harnesses may panic and read the clock...
    let (_, no_panic_trigger, _, _) = CASES[1];
    let (_, wall_clock_trigger, _, _) = CASES[3];
    assert!(ids(no_panic_trigger, Scope::Harness).is_empty());
    assert!(ids(wall_clock_trigger, Scope::Harness).is_empty());
    // ...but determinism rules still apply to them.
    let (_, hash_trigger, _, _) = CASES[2];
    assert_eq!(ids(hash_trigger, Scope::Harness), vec!["hash-order"]);
}

#[test]
fn waiver_naming_an_unknown_rule_is_an_error() {
    let found = ids(include_str!("fixtures/unknown_rule.rs"), Scope::Library);
    assert_eq!(found, vec!["unknown-rule"]);
}

#[test]
fn waiver_without_a_reason_is_an_error_and_suppresses_nothing() {
    let found = ids(include_str!("fixtures/missing_reason.rs"), Scope::Library);
    assert!(found.contains(&"missing-reason"), "{found:?}");
    assert!(found.contains(&"no-panic"), "{found:?}");
}

#[test]
fn malformed_directive_is_an_error() {
    let found = ids(include_str!("fixtures/bad_waiver.rs"), Scope::Library);
    assert_eq!(found, vec!["bad-waiver"]);
}

#[test]
fn diagnostics_carry_file_line_and_snippet() {
    let findings = check_source(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/no_panic_trigger.rs"),
        Scope::Library,
    );
    assert_eq!(findings.diagnostics.len(), 1);
    let d = &findings.diagnostics[0];
    assert_eq!(d.file, "crates/demo/src/lib.rs");
    assert_eq!(d.line, 4);
    assert!(d.snippet.contains("unwrap"), "{}", d.snippet);
    assert_eq!(
        d.to_string(),
        format!("crates/demo/src/lib.rs:4: [no-panic] {}", d.snippet)
    );
}
