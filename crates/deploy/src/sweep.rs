//! Maximum-ISD optimization (paper Section V).

use corridor_units::Meters;

use crate::{CorridorLayout, CoverageCriterion, IsdTable, LinkBudget, PlacementPolicy};

/// Finds, for each repeater count, the largest inter-site distance that
/// still satisfies a coverage criterion — the paper's 50 m-step sweep.
///
/// The search exploits that stretching a segment only ever worsens its
/// worst-served point (for the supported placement policies both the
/// mast-to-cluster gap and the inter-node gaps are non-decreasing in the
/// ISD), so a binary search over the ISD grid finds the boundary; the
/// result is verified against the criterion before being returned.
///
/// # Examples
///
/// ```
/// use corridor_deploy::{IsdOptimizer, LinkBudget};
/// use corridor_units::Meters;
///
/// let optimizer = IsdOptimizer::new(LinkBudget::paper_default());
/// let max = optimizer.max_isd(1).unwrap();
/// // paper: one repeater extends the ISD to 1250 m
/// assert_eq!(max, Meters::new(1250.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IsdOptimizer {
    budget: LinkBudget,
    placement: PlacementPolicy,
    criterion: CoverageCriterion,
    isd_step: Meters,
    sample_step: Meters,
    min_isd: Meters,
    max_isd: Meters,
}

impl IsdOptimizer {
    /// An optimizer with the paper's setup: 50 m ISD grid, 200 m fixed
    /// repeater spacing, min-SNR-29 dB criterion, search range
    /// 100 m – 4000 m, 5 m profile sampling.
    pub fn new(budget: LinkBudget) -> Self {
        IsdOptimizer {
            budget,
            placement: PlacementPolicy::paper_default(),
            criterion: CoverageCriterion::paper_default(),
            isd_step: Meters::new(50.0),
            sample_step: Meters::new(5.0),
            min_isd: Meters::new(100.0),
            max_isd: Meters::new(4000.0),
        }
    }

    /// Overrides the placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Overrides the coverage criterion.
    #[must_use]
    pub fn with_criterion(mut self, criterion: CoverageCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Overrides the ISD grid step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    #[must_use]
    pub fn with_isd_step(mut self, step: Meters) -> Self {
        assert!(step.value() > 0.0, "ISD step must be positive");
        self.isd_step = step;
        self
    }

    /// Overrides the profile sampling step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    #[must_use]
    pub fn with_sample_step(mut self, step: Meters) -> Self {
        assert!(step.value() > 0.0, "sample step must be positive");
        self.sample_step = step;
        self
    }

    /// Overrides the search range `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or non-positive.
    #[must_use]
    pub fn with_search_range(mut self, min: Meters, max: Meters) -> Self {
        assert!(min.value() > 0.0 && max >= min, "invalid search range");
        self.min_isd = min;
        self.max_isd = max;
        self
    }

    /// The link budget in use.
    pub fn budget(&self) -> &LinkBudget {
        &self.budget
    }

    /// The placement policy in use.
    pub fn placement(&self) -> &PlacementPolicy {
        &self.placement
    }

    /// The criterion in use.
    pub fn criterion(&self) -> CoverageCriterion {
        self.criterion
    }

    fn grid(&self, i: u64) -> Meters {
        self.min_isd + self.isd_step * i as f64
    }

    fn grid_len(&self) -> u64 {
        ((self.max_isd - self.min_isd) / self.isd_step).floor() as u64
    }

    /// True if a segment of `isd` with `n` repeaters satisfies the
    /// criterion (placement failures count as unsatisfied).
    pub fn satisfies(&self, n: usize, isd: Meters) -> bool {
        let Ok(layout) = CorridorLayout::with_policy(isd, n, &self.placement) else {
            return false;
        };
        let profile = layout.coverage_profile(&self.budget, self.sample_step);
        self.criterion
            .is_satisfied(&profile, self.budget.throughput())
    }

    /// The largest grid ISD for which `n` repeaters satisfy the criterion,
    /// or `None` if even the smallest feasible ISD fails.
    pub fn max_isd(&self, n: usize) -> Option<Meters> {
        // find the first grid point where placement succeeds and the
        // criterion holds
        let mut lo = None;
        for i in 0..=self.grid_len() {
            if self.satisfies(n, self.grid(i)) {
                lo = Some(i);
                break;
            }
            // placement infeasible (cluster too wide) keeps failing only
            // below the span; once feasible, a failing criterion means all
            // larger ISDs fail too
            if CorridorLayout::with_policy(self.grid(i), n, &self.placement).is_ok() {
                return None;
            }
        }
        let mut lo = lo?;
        let mut hi = self.grid_len();
        if self.satisfies(n, self.grid(hi)) {
            return Some(self.grid(hi));
        }
        // invariant: grid(lo) satisfies, grid(hi) does not
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.satisfies(n, self.grid(mid)) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(self.grid(lo))
    }

    /// Sweeps `n = 0..=max_nodes` and collects the results in an
    /// [`IsdTable`].
    pub fn sweep(&self, max_nodes: usize) -> IsdTable {
        IsdTable::from_max_isds((0..=max_nodes).map(|n| self.max_isd(n)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_units::Db;

    fn optimizer() -> IsdOptimizer {
        // coarser sampling keeps debug-mode tests quick; the boundary ISDs
        // are insensitive to 5 m vs 10 m sampling at a 50 m grid
        IsdOptimizer::new(LinkBudget::paper_default()).with_sample_step(Meters::new(10.0))
    }

    #[test]
    fn paper_anchor_points() {
        let opt = optimizer();
        // the model reproduces the paper's first two entries exactly
        assert_eq!(opt.max_isd(1), Some(Meters::new(1250.0)));
        assert_eq!(opt.max_isd(2), Some(Meters::new(1450.0)));
    }

    #[test]
    fn monotone_in_node_count() {
        let opt = optimizer();
        let table = opt.sweep(4);
        let mut last = Meters::ZERO;
        for n in 0..=4 {
            let isd = table.isd_for(n).expect("every n solvable");
            assert!(isd >= last, "n={n}: {isd} < {last}");
            last = isd;
        }
    }

    #[test]
    fn boundary_is_tight() {
        let opt = optimizer();
        let isd = opt.max_isd(1).unwrap();
        assert!(opt.satisfies(1, isd));
        assert!(!opt.satisfies(1, isd + Meters::new(50.0)));
    }

    #[test]
    fn conventional_beats_500m_under_model() {
        // the model's N=0 bound exceeds the 500 m "typical deployment"
        // (the paper's 500 m comes from real-world constraints, not from
        // this link budget)
        let opt = optimizer();
        let isd = opt.max_isd(0).unwrap();
        assert!(isd >= Meters::new(500.0));
        assert!(opt.satisfies(0, Meters::new(500.0)));
    }

    #[test]
    fn stricter_criterion_shrinks_isd() {
        let opt = optimizer();
        let strict = optimizer().with_criterion(CoverageCriterion::MinSnr(Db::new(32.0)));
        assert!(strict.max_isd(2).unwrap() < opt.max_isd(2).unwrap());
    }

    #[test]
    fn impossible_criterion_returns_none() {
        let opt = optimizer().with_criterion(CoverageCriterion::MinSnr(Db::new(90.0)));
        assert_eq!(opt.max_isd(1), None);
    }

    #[test]
    fn capped_at_search_range() {
        let opt = optimizer().with_search_range(Meters::new(100.0), Meters::new(800.0));
        // n=1 could reach 1250 m but the range caps it
        assert_eq!(opt.max_isd(1), Some(Meters::new(800.0)));
    }

    #[test]
    fn accessors() {
        let opt = optimizer();
        assert_eq!(opt.criterion(), CoverageCriterion::paper_default());
        assert_eq!(opt.placement(), &PlacementPolicy::paper_default());
        assert_eq!(opt.budget(), &LinkBudget::paper_default());
    }
}
