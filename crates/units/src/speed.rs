//! Speed quantities.

use core::fmt;
use core::ops::{Div, Mul};

use crate::{Meters, Seconds};

/// A speed in metres per second.
///
/// # Examples
///
/// ```
/// use corridor_units::{KilometersPerHour, MetersPerSecond, Seconds};
/// let v: MetersPerSecond = KilometersPerHour::new(200.0).into();
/// assert!((v.value() - 55.5556).abs() < 1e-3);
/// let travelled = v * Seconds::new(10.8);
/// assert!((travelled.value() - 600.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MetersPerSecond(f64);

impl MetersPerSecond {
    /// Creates a speed of `value` m/s.
    #[inline]
    pub const fn new(value: f64) -> Self {
        MetersPerSecond(value)
    }

    /// Returns the raw value in m/s.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Total order over the raw value, as [`f64::total_cmp`]: NaN sorts
    /// after `+inf`, so comparison-based searches order NaN last instead
    /// of panicking or silently dropping elements.
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Converts to km/h.
    #[inline]
    pub fn kilometers_per_hour(self) -> KilometersPerHour {
        KilometersPerHour(self.0 * 3.6)
    }
}

impl fmt::Display for MetersPerSecond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} m/s", self.0)
    }
}

impl Mul<Seconds> for MetersPerSecond {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: Seconds) -> Meters {
        Meters::new(self.0 * rhs.value())
    }
}

impl Mul<f64> for MetersPerSecond {
    type Output = MetersPerSecond;
    #[inline]
    fn mul(self, rhs: f64) -> MetersPerSecond {
        MetersPerSecond(self.0 * rhs)
    }
}

impl Div<f64> for MetersPerSecond {
    type Output = MetersPerSecond;
    #[inline]
    fn div(self, rhs: f64) -> MetersPerSecond {
        MetersPerSecond(self.0 / rhs)
    }
}

impl From<KilometersPerHour> for MetersPerSecond {
    #[inline]
    fn from(v: KilometersPerHour) -> MetersPerSecond {
        MetersPerSecond(v.0 / 3.6)
    }
}

/// A speed in kilometres per hour (the natural unit for train timetables).
///
/// # Examples
///
/// ```
/// use corridor_units::KilometersPerHour;
/// let v = KilometersPerHour::new(200.0);
/// assert!((v.meters_per_second().value() - 55.56).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KilometersPerHour(f64);

impl KilometersPerHour {
    /// Creates a speed of `value` km/h.
    #[inline]
    pub const fn new(value: f64) -> Self {
        KilometersPerHour(value)
    }

    /// Returns the raw value in km/h.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Total order over the raw value, as [`f64::total_cmp`]: NaN sorts
    /// after `+inf`, so comparison-based searches order NaN last instead
    /// of panicking or silently dropping elements.
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Converts to m/s.
    #[inline]
    pub fn meters_per_second(self) -> MetersPerSecond {
        MetersPerSecond(self.0 / 3.6)
    }
}

impl fmt::Display for KilometersPerHour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} km/h", self.0)
    }
}

impl From<MetersPerSecond> for KilometersPerHour {
    #[inline]
    fn from(v: MetersPerSecond) -> KilometersPerHour {
        v.kilometers_per_hour()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmh_ms_round_trip() {
        let v = KilometersPerHour::new(200.0);
        let back: KilometersPerHour = v.meters_per_second().into();
        assert!((back.value() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn speed_times_time() {
        let v = MetersPerSecond::new(55.555_555_6);
        let d = v * Seconds::new(54.9);
        assert!((d.value() - 3050.0).abs() < 0.1);
    }

    #[test]
    fn scaling() {
        assert_eq!(MetersPerSecond::new(10.0) * 2.0, MetersPerSecond::new(20.0));
        assert_eq!(MetersPerSecond::new(10.0) / 2.0, MetersPerSecond::new(5.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(KilometersPerHour::new(200.0).to_string(), "200.0 km/h");
        assert_eq!(MetersPerSecond::new(55.556).to_string(), "55.56 m/s");
    }
}
