//! Regenerates the paper's Table II: EARTH power-model parameters for the
//! RRH and the repeater node.
//!
//! The rendering lives in [`corridor_bench::render`] so the golden-file
//! test can assert it against `docs/results/`.

fn main() {
    print!("{}", corridor_bench::render::table2());
}
