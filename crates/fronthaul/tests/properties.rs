//! Property-based tests for the mmWave fronthaul substrate.

use corridor_fronthaul::{atmosphere, FronthaulChain, FronthaulHop, MmWaveBand};
use corridor_units::{Hertz, Meters};
use proptest::prelude::*;

fn band() -> impl Strategy<Value = MmWaveBand> {
    prop_oneof![
        Just(MmWaveBand::v_band_60ghz()),
        Just(MmWaveBand::e_band_80ghz()),
    ]
}

proptest! {
    /// Rain attenuation is non-negative and monotone in the rain rate.
    #[test]
    fn rain_monotone(f in 30.0..100.0f64, r1 in 0.0..150.0f64, r2 in 0.0..150.0f64) {
        let freq = Hertz::from_ghz(f);
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let g_lo = atmosphere::rain_db_per_km(freq, lo);
        let g_hi = atmosphere::rain_db_per_km(freq, hi);
        prop_assert!(g_lo.value() >= 0.0);
        prop_assert!(g_hi >= g_lo);
    }

    /// Hop SNR decreases monotonically with distance and rain.
    #[test]
    fn hop_snr_monotone(b in band(), d1 in 50.0..2000.0f64, d2 in 50.0..2000.0f64, rain in 0.0..100.0f64) {
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let hop_near = FronthaulHop::new(b, Meters::new(near));
        let hop_far = FronthaulHop::new(b, Meters::new(far));
        prop_assert!(hop_near.snr(rain) >= hop_far.snr(rain));
        prop_assert!(hop_near.snr(0.0) >= hop_near.snr(rain));
    }

    /// The max-tolerated rain rate is consistent with the margin: at that
    /// rate the margin is ~zero, just below it is positive.
    #[test]
    fn max_rain_rate_consistent(b in band(), d in 100.0..800.0f64) {
        let hop = FronthaulHop::new(b, Meters::new(d));
        let max_rain = hop.max_rain_rate_mm_h();
        if max_rain > 0.0 && max_rain < 500.0 {
            prop_assert!(hop.margin_in_rain(max_rain * 0.95).value() > -0.5);
            prop_assert!(hop.margin_in_rain(max_rain * 1.05).value() < 0.5);
        }
    }

    /// Availability is a probability and monotone in the clear-sky margin.
    #[test]
    fn availability_bounded(b in band(), d1 in 100.0..1500.0f64, d2 in 100.0..1500.0f64) {
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let a_near = FronthaulHop::new(b, Meters::new(near)).rain_availability();
        let a_far = FronthaulHop::new(b, Meters::new(far)).rain_availability();
        prop_assert!((0.0..=1.0).contains(&a_near));
        prop_assert!((0.0..=1.0).contains(&a_far));
        prop_assert!(a_near >= a_far - 1e-12);
    }

    /// Daisy chains over evenly spaced nodes have hop count = node count
    /// and their worst margin never beats the longest single hop's margin
    /// bound from the first gap.
    #[test]
    fn daisy_chain_structure(n in 1usize..10, isd in 1400.0..3000.0f64) {
        let spacing = 200.0;
        let span = spacing * (n - 1) as f64;
        prop_assume!(span < isd - 100.0);
        let first = (isd - span) / 2.0;
        let positions: Vec<Meters> =
            (0..n).map(|i| Meters::new(first + spacing * i as f64)).collect();
        let chain = FronthaulChain::for_segment(
            MmWaveBand::v_band_60ghz(), &positions, Meters::new(isd));
        prop_assert_eq!(chain.hops().len(), n);
        let report = chain.evaluate();
        // every daisy hop is at most the donor gap, which is < isd/2
        for hop in chain.hops() {
            prop_assert!(hop.distance().value() <= isd / 2.0 + 1e-9);
        }
        // report consistency
        let min_margin = chain.hops().iter()
            .map(|h| h.clear_sky_margin().value())
            .fold(f64::INFINITY, f64::min);
        prop_assert!((report.worst_margin_db - min_margin).abs() < 1e-12);
    }

    /// The star topology's worst hop is always at least as long as the
    /// daisy topology's worst hop, so its margin is never better.
    #[test]
    fn star_never_beats_daisy(n in 1usize..10, isd in 1400.0..3000.0f64) {
        let spacing = 200.0;
        let span = spacing * (n - 1) as f64;
        prop_assume!(span < isd - 100.0);
        let first = (isd - span) / 2.0;
        let positions: Vec<Meters> =
            (0..n).map(|i| Meters::new(first + spacing * i as f64)).collect();
        let band = MmWaveBand::v_band_60ghz();
        let daisy = FronthaulChain::for_segment(band, &positions, Meters::new(isd));
        let star = FronthaulChain::star_for_segment(band, &positions, Meters::new(isd));
        prop_assert!(star.evaluate().worst_margin_db <= daisy.evaluate().worst_margin_db + 1e-9);
    }
}
