//! Event-driven corridor simulation: replays one or more seeded days of
//! (possibly stochastic) traffic through the per-node wake state
//! machines and prints a reproducible per-node energy report.
//!
//! ```console
//! $ cargo run --release -p corridor_bench --bin simulate -- --help
//! $ cargo run --release -p corridor_bench --bin simulate -- --model poisson --seed 42
//! $ cargo run --release -p corridor_bench --bin simulate -- --stats
//! ```
//!
//! Stdout depends only on the options (seeded RNG, no clocks), so piped
//! output is byte-reproducible; the wall-clock timing goes to stderr.

use std::process::ExitCode;
use std::time::Instant;

use corridor_bench::{render, scenario};
use corridor_core::deploy::IsdTable;
use corridor_core::report::TextTable;
use corridor_core::traffic::{
    DelayModel, MixedTimetable, PoissonTimetable, Timetable, TrafficModel,
};
use corridor_core::{AnalyticEvaluator, EnergyStrategy, SegmentEvaluator};
use corridor_events::{EventDrivenEvaluator, WakePolicy};
use rand::SeedableRng;

const USAGE: &str = "\
usage: simulate [options]

options:
  --model M     deterministic | poisson | jittered | mixed (default: poisson)
  --seed N      RNG seed for stochastic models (default: 42)
  --days N      days to simulate and average over (default: 1)
  --nodes N     repeaters per segment, 0-10 (default: 10)
  --policy P    wake policy: instant | paper (default: paper)
  --stats       print the fixed-seed Poisson statistics report and exit
  --help        this text
";

struct Options {
    model: TrafficModel,
    model_name: String,
    seed: u64,
    days: usize,
    nodes: usize,
    policy: WakePolicy,
    policy_name: String,
    stats: bool,
}

fn parse(mut args: std::env::Args) -> Result<Option<Options>, String> {
    let mut opts = Options {
        model: TrafficModel::Poisson(PoissonTimetable::paper_rate()),
        model_name: "poisson".into(),
        seed: 42,
        days: 1,
        nodes: 10,
        policy: WakePolicy::paper_default(),
        policy_name: "paper".into(),
        stats: false,
    };
    let _ = args.next(); // binary name
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--model" => {
                let name = value("--model")?;
                opts.model = match name.as_str() {
                    "deterministic" => TrafficModel::Deterministic(Timetable::paper_default()),
                    "poisson" => TrafficModel::Poisson(PoissonTimetable::paper_rate()),
                    "jittered" => TrafficModel::Jittered {
                        base: Timetable::paper_default(),
                        delays: DelayModel::typical(),
                    },
                    "mixed" => TrafficModel::Mixed(MixedTimetable::paper_mixed()),
                    other => return Err(format!("unknown model {other}")),
                };
                opts.model_name = name;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--days" => {
                opts.days = value("--days")?
                    .parse()
                    .map_err(|e| format!("--days: {e}"))?;
                if opts.days == 0 {
                    return Err("--days must be at least 1".into());
                }
            }
            "--nodes" => {
                opts.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
                if opts.nodes > 10 {
                    return Err("--nodes must be 0-10 (the paper's ISD table)".into());
                }
            }
            "--policy" => {
                let name = value("--policy")?;
                opts.policy = match name.as_str() {
                    "instant" => WakePolicy::instant(),
                    "paper" => WakePolicy::paper_default(),
                    other => return Err(format!("unknown policy {other}")),
                };
                opts.policy_name = name;
            }
            "--stats" => opts.stats = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse(std::env::args()) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("simulate: {message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if opts.stats {
        print!("{}", render::poisson_stats());
        return ExitCode::SUCCESS;
    }

    let params = scenario();
    let isd = IsdTable::paper()
        .isd_for(opts.nodes)
        .expect("nodes validated to 0-10");
    let evaluator = EventDrivenEvaluator::with_policy(opts.policy);
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);

    let started = Instant::now();
    let mut reports = Vec::with_capacity(opts.days);
    for _ in 0..opts.days {
        let passes = opts.model.passes(&mut rng);
        reports.push(evaluator.simulate_segment(&params, opts.nodes, isd, &passes));
    }
    let elapsed = started.elapsed();

    println!("event-driven corridor simulation");
    println!();
    println!(
        "model: {}  seed: {}  days: {}  policy: {}",
        opts.model_name, opts.seed, opts.days, opts.policy_name
    );
    println!(
        "segment: {} repeater(s) at ISD {:.0} m, LP spacing {:.0} m",
        opts.nodes,
        isd.value(),
        params.lp_spacing().value()
    );
    println!();

    // per-node table, averaged over the simulated days
    let first = &reports[0];
    let days = reports.len() as f64;
    let mut table = TextTable::new(vec![
        "node".into(),
        "kind".into(),
        "section [m]".into(),
        "wakes/day".into(),
        "powered [s/day]".into(),
        "uncovered [s/day]".into(),
        "energy [Wh/day]".into(),
    ]);
    for (idx, node) in first.nodes().iter().enumerate() {
        let wakes: f64 = reports
            .iter()
            .map(|r| r.nodes()[idx].trace().wakes() as f64)
            .sum::<f64>()
            / days;
        let powered: f64 = reports
            .iter()
            .map(|r| r.nodes()[idx].trace().powered().value())
            .sum::<f64>()
            / days;
        let uncovered: f64 = reports
            .iter()
            .map(|r| r.nodes()[idx].trace().uncovered().value())
            .sum::<f64>()
            / days;
        let model = match node.kind() {
            corridor_events::NodeKind::HighPowerMast => params.hp_mast(),
            _ => params.lp_node(),
        };
        let energy: f64 = reports
            .iter()
            .map(|r| r.nodes()[idx].trace().daily_energy(model).value())
            .sum::<f64>()
            / days;
        table.add_row(vec![
            idx.to_string(),
            node.kind().to_string(),
            format!(
                "{:.0}..{:.0}",
                node.section().start().value(),
                node.section().end().value()
            ),
            format!("{wakes:.1}"),
            format!("{powered:.1}"),
            format!("{uncovered:.2}"),
            format!("{energy:.2}"),
        ]);
    }
    println!("{}", table.render());

    let mean_passes: f64 = reports.iter().map(|r| r.passes() as f64).sum::<f64>() / days;
    let mean_events: f64 = reports
        .iter()
        .map(|r| r.events_processed() as f64)
        .sum::<f64>()
        / days;
    println!("mean passes/day: {mean_passes:.1}  mean events/day: {mean_events:.0}");
    println!();

    // segment energy per strategy, simulated vs closed form
    println!("per-km energy split (day 1) vs the closed-form backend:");
    let mut split = TextTable::new(vec![
        "strategy".into(),
        "simulated [Wh/h/km]".into(),
        "analytic [Wh/h/km]".into(),
        "delta [%]".into(),
    ]);
    // the first report already is day 1, and its trace serves all three
    // strategies
    for strategy in EnergyStrategy::ALL {
        let simulated =
            EventDrivenEvaluator::power_from_report(&params, opts.nodes, isd, strategy, first)
                .total()
                .value();
        let analytic = AnalyticEvaluator
            .average_power_per_km(&params, opts.nodes, isd, strategy)
            .total()
            .value();
        split.add_row(vec![
            strategy.to_string(),
            format!("{simulated:.3}"),
            format!("{analytic:.3}"),
            format!("{:+.3}", (simulated / analytic - 1.0) * 100.0),
        ]);
    }
    println!("{}", split.render());
    eprintln!(
        "simulated {} day(s) in {:.1} ms ({:.0} events/s)",
        opts.days,
        elapsed.as_secs_f64() * 1e3,
        mean_events * days / elapsed.as_secs_f64().max(1e-9)
    );
    ExitCode::SUCCESS
}
