//! Differential test harness: the event-driven simulator versus the
//! closed-form analytic model.
//!
//! The two backends compute the same physical quantity — the corridor's
//! per-kilometre energy split — by completely different means (merged
//! duty-cycle hours versus a replayed event queue through per-node wake
//! state machines). On every *deterministic* paper scenario they must
//! agree to better than 0.1 %; this suite enforces that bound cell by
//! cell, through the sweep engine under 1 and 8 workers, and on random
//! scenarios via property tests. For *stochastic* timetables, where the
//! closed form cannot follow, fixed-seed statistics pin the simulator's
//! mean against the analytic value instead.
//!
//! Run it alone with `make differential`.

use corridor_core::deploy::IsdTable;
use corridor_core::traffic::{MixedTimetable, Timetable, TrafficModel};
use corridor_core::{
    experiments, AnalyticEvaluator, EnergyStrategy, ScenarioParams, SegmentEvaluator,
};
use corridor_events::{EventDrivenEvaluator, WakePolicy};
use corridor_sim::{Evaluator, ScenarioGrid, SweepEngine};
use proptest::prelude::*;
use rand::SeedableRng;

/// The differential bound: both backends agree to < 0.1 % on
/// deterministic scenarios.
const BOUND: f64 = 1e-3;

fn relative_diff(simulated: f64, analytic: f64) -> f64 {
    if analytic == 0.0 {
        simulated.abs()
    } else {
        (simulated - analytic).abs() / analytic.abs()
    }
}

/// Asserts the full energy split of both backends within [`BOUND`].
fn assert_split_matches(params: &ScenarioParams, n: usize, isd_m: f64, context: &str) {
    let isd = corridor_core::units::Meters::new(isd_m);
    let simulated = EventDrivenEvaluator::new();
    for strategy in EnergyStrategy::ALL {
        let sim = simulated.average_power_per_km(params, n, isd, strategy);
        let ana = AnalyticEvaluator.average_power_per_km(params, n, isd, strategy);
        for (s, a, role) in [
            (sim.hp, ana.hp, "hp"),
            (sim.service, ana.service, "service"),
            (sim.donor, ana.donor, "donor"),
        ] {
            assert!(
                relative_diff(s.value(), a.value()) < BOUND,
                "{context}: n={n} isd={isd_m} {strategy} {role}: {s} vs {a}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic paper scenarios
// ---------------------------------------------------------------------------

#[test]
fn headline_cells_match() {
    // the Section V-A headline deployments: 1 and 10 nodes
    let params = ScenarioParams::paper_default();
    let table = IsdTable::paper();
    for n in [1usize, 10] {
        assert_split_matches(&params, n, table.isd_for(n).unwrap().value(), "headline");
    }
}

#[test]
fn every_fig4_cell_matches() {
    // the full Fig. 4 sweep: conventional (n = 0) through 10 nodes
    let params = ScenarioParams::paper_default();
    let table = IsdTable::paper();
    for n in 0..=10 {
        assert_split_matches(&params, n, table.isd_for(n).unwrap().value(), "fig4");
    }
}

#[test]
fn headline_savings_match_through_both_backends() {
    let params = ScenarioParams::paper_default();
    let table = IsdTable::paper();
    let h = experiments::headline_numbers(&params);
    let simulated = EventDrivenEvaluator::new();
    let expectations = [
        (1, EnergyStrategy::SleepModeRepeaters, h.savings_sleep_1),
        (10, EnergyStrategy::SleepModeRepeaters, h.savings_sleep_10),
        (1, EnergyStrategy::SolarPoweredRepeaters, h.savings_solar_1),
        (
            10,
            EnergyStrategy::SolarPoweredRepeaters,
            h.savings_solar_10,
        ),
    ];
    for (n, strategy, analytic) in expectations {
        let isd = table.isd_for(n).unwrap();
        let sim = simulated.savings_vs_conventional(&params, n, isd, strategy);
        assert!(
            (sim - analytic).abs() < BOUND,
            "n={n} {strategy}: {sim} vs {analytic}"
        );
    }
}

#[test]
fn table3_variants_match() {
    // Table III parameter variations: every row the paper tabulates has
    // a scenario-level knob; vary each around the default
    let variants: Vec<(&str, ScenarioParams)> = vec![
        ("paper default", ScenarioParams::paper_default()),
        (
            "4 trains/h",
            ScenarioParams::builder()
                .trains_per_hour(4.0)
                .build()
                .unwrap(),
        ),
        (
            "16 h window",
            ScenarioParams::builder()
                .service_window_h(16.0)
                .build()
                .unwrap(),
        ),
        (
            "short slow train",
            ScenarioParams::builder()
                .train_length_m(200.0)
                .train_speed_kmh(120.0)
                .build()
                .unwrap(),
        ),
        (
            "150 m spacing",
            ScenarioParams::builder()
                .lp_spacing_m(150.0)
                .build()
                .unwrap(),
        ),
        (
            "600 m conventional ISD",
            ScenarioParams::builder()
                .conventional_isd_m(600.0)
                .build()
                .unwrap(),
        ),
    ];
    for (name, params) in &variants {
        assert_split_matches(params, 10, 2650.0, name);
        assert_split_matches(params, 0, params.conventional_isd().value(), name);
    }
}

#[test]
fn table4_cells_match() {
    // Table IV evaluates the same 10-node segment under four climates;
    // the climates only affect PV sizing, so the energy split must be
    // identical across them and match the analytic backend in each
    let grid =
        ScenarioGrid::new().locations(corridor_core::solar::climate::paper_regions().to_vec());
    let engine = SweepEngine::new().workers(1).pv_sizing(false);
    let analytic = engine.run(&grid).unwrap();
    let simulated = engine
        .evaluator(Evaluator::event_driven())
        .run(&grid)
        .unwrap();
    assert_eq!(analytic.len(), 4);
    for (a, s) in analytic.results().iter().zip(simulated.results()) {
        for strategy in EnergyStrategy::ALL {
            let rel = relative_diff(
                s.split(strategy).total().value(),
                a.split(strategy).total().value(),
            );
            assert!(rel < BOUND, "{}: {strategy} {rel}", a.cell());
        }
    }
}

// ---------------------------------------------------------------------------
// Through the sweep engine, 1 and 8 workers
// ---------------------------------------------------------------------------

/// A grid exercising several axes at once (12 cells).
fn mixed_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0, 12.0])
        .train_speeds_kmh(vec![160.0, 200.0])
        .conventional_isds_m(vec![450.0, 550.0])
}

#[test]
fn sweep_backends_agree_under_1_and_8_workers() {
    let grid = mixed_grid();
    for workers in [1usize, 8] {
        let engine = SweepEngine::new().workers(workers).pv_sizing(false);
        let analytic = engine.run(&grid).unwrap();
        let simulated = engine
            .evaluator(Evaluator::event_driven())
            .run(&grid)
            .unwrap();
        assert_eq!(analytic.len(), simulated.len());
        for (a, s) in analytic.results().iter().zip(simulated.results()) {
            assert_eq!(a.evaluator(), "analytic");
            assert_eq!(s.evaluator(), "event-driven");
            for strategy in EnergyStrategy::ALL {
                let rel = relative_diff(
                    s.split(strategy).total().value(),
                    a.split(strategy).total().value(),
                );
                assert!(
                    rel < BOUND,
                    "workers={workers} {}: {strategy} {rel}",
                    a.cell()
                );
                let savings_gap = (s.savings(strategy) - a.savings(strategy)).abs();
                assert!(
                    savings_gap < BOUND,
                    "workers={workers} {}: {strategy} savings gap {savings_gap}",
                    a.cell()
                );
            }
        }
    }
}

#[test]
fn event_driven_sweep_is_deterministic_across_worker_counts() {
    let grid = mixed_grid();
    let engine = SweepEngine::new()
        .pv_sizing(false)
        .evaluator(Evaluator::event_driven());
    let reference = engine.workers(1).run(&grid).unwrap();
    let eight = engine.workers(8).run(&grid).unwrap();
    assert_eq!(reference.results(), eight.results());
    assert_eq!(reference.to_csv(), eight.to_csv());
}

// ---------------------------------------------------------------------------
// Property tests: random deterministic scenarios
// ---------------------------------------------------------------------------

proptest! {
    /// Random (valid) scenarios stay inside the differential bound for
    /// every strategy and both the 1- and 10-node deployments.
    #[test]
    fn random_scenarios_stay_inside_the_bound(
        tph in 1.0..14.0f64,
        speed in 100.0..300.0f64,
        length in 100.0..600.0f64,
        spacing in 120.0..300.0f64,
        // capped at the paper's 19 h so the whole service day (which
        // starts at 05:00) fits the simulator's calendar-day horizon
        window in 10.0..19.0f64,
    ) {
        let params = ScenarioParams::builder()
            .trains_per_hour(tph)
            .train_speed_kmh(speed)
            .train_length_m(length)
            .lp_spacing_m(spacing)
            .service_window_h(window)
            .build()
            .unwrap();
        let table = IsdTable::paper();
        for n in [1usize, 10] {
            let isd = table.isd_for(n).unwrap();
            let simulated = EventDrivenEvaluator::new();
            for strategy in EnergyStrategy::ALL {
                let sim = simulated.average_power_per_km(&params, n, isd, strategy).total().value();
                let ana = AnalyticEvaluator.average_power_per_km(&params, n, isd, strategy).total().value();
                prop_assert!(
                    relative_diff(sim, ana) < BOUND,
                    "n={} {}: {} vs {}", n, strategy, sim, ana
                );
            }
        }
    }

    /// A non-instant wake policy never reduces energy below the instant
    /// one, and the overhead stays small at paper-like lead/guard values.
    #[test]
    fn wake_policy_overhead_is_monotone_and_small(
        lead in 0.0..2.0f64,
        delay in 0.0..1.0f64,
        guard in 0.0..2.0f64,
    ) {
        use corridor_core::units::{Meters, Seconds};
        let params = ScenarioParams::paper_default();
        let isd = Meters::new(2650.0);
        let strategy = EnergyStrategy::SleepModeRepeaters;
        let instant = EventDrivenEvaluator::new()
            .average_power_per_km(&params, 10, isd, strategy).total().value();
        let policy = WakePolicy::new(Seconds::new(lead), Seconds::new(delay), Seconds::new(guard));
        let padded = EventDrivenEvaluator::with_policy(policy)
            .average_power_per_km(&params, 10, isd, strategy).total().value();
        prop_assert!(padded >= instant - 1e-9, "{} < {}", padded, instant);
        // a few seconds of padding on ~11-55 s bursts stays below 2 %
        prop_assert!(padded / instant < 1.02, "overhead {}", padded / instant - 1.0);
    }
}

// ---------------------------------------------------------------------------
// Stochastic timetables: statistics instead of identity
// ---------------------------------------------------------------------------

/// Mean daily service-repeater energy over `runs` seeded Poisson days —
/// the same pipeline the `poisson_stats` golden file pins
/// ([`corridor_bench::poisson_service_day`]).
fn poisson_mean_energy(runs: u64) -> f64 {
    (0..runs)
        .map(|seed| corridor_bench::poisson_service_day(seed).energy_wh)
        .sum::<f64>()
        / runs as f64
}

#[test]
fn poisson_mean_converges_to_the_analytic_value() {
    let analytic = experiments::headline_numbers(&ScenarioParams::paper_default())
        .repeater_daily_energy
        .value();
    // few runs: within 5 %; many runs: within 1 % — the N-run mean
    // approaches the deterministic closed-form energy
    let coarse = poisson_mean_energy(25);
    let fine = poisson_mean_energy(400);
    assert!(
        relative_diff(coarse, analytic) < 0.05,
        "25 runs: {coarse} vs {analytic}"
    );
    assert!(
        relative_diff(fine, analytic) < 0.01,
        "400 runs: {fine} vs {analytic}"
    );
    assert!(
        relative_diff(fine, analytic) <= relative_diff(coarse, analytic) + 0.01,
        "convergence went backwards: {fine} vs {coarse} (analytic {analytic})"
    );
}

#[test]
fn jittered_timetables_cost_no_less_than_the_deterministic_day() {
    // jitter shuffles bursts around but never removes traffic: daily HP
    // powered time stays within a few percent of the deterministic day
    let params = ScenarioParams::paper_default();
    let isd = IsdTable::paper().isd_for(10).unwrap();
    let model = TrafficModel::Jittered {
        base: Timetable::paper_default(),
        delays: corridor_core::traffic::DelayModel::typical(),
    };
    let evaluator = EventDrivenEvaluator::new();
    let deterministic = evaluator
        .simulate_segment(&params, 10, isd, &Timetable::paper_default().passes())
        .nodes()[0]
        .trace()
        .powered()
        .value();
    for seed in 0..5u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let passes = model.passes(&mut rng);
        let jittered = evaluator
            .simulate_segment(&params, 10, isd, &passes)
            .nodes()[0]
            .trace()
            .powered()
            .value();
        let rel = relative_diff(jittered, deterministic);
        assert!(rel < 0.05, "seed {seed}: {jittered} vs {deterministic}");
    }
}

#[test]
fn mixed_services_match_the_analytic_superposition() {
    // a mixed fast/slow day is still deterministic, so the event-driven
    // energy must match an analytic computation over the same passes —
    // here via the activity-timeline identity on the HP mast
    use corridor_core::traffic::{ActivityTimeline, TrackSection};
    use corridor_core::units::Meters;
    let params = ScenarioParams::paper_default();
    let isd = IsdTable::paper().isd_for(10).unwrap();
    let passes = MixedTimetable::paper_mixed().passes();
    let report = EventDrivenEvaluator::new().simulate_segment(&params, 10, isd, &passes);
    let analytic = ActivityTimeline::for_section(&TrackSection::new(Meters::ZERO, isd), &passes)
        .total_active()
        .value();
    let simulated = report.nodes()[0].trace().powered().value();
    assert!(
        relative_diff(simulated, analytic) < 1e-9,
        "{simulated} vs {analytic}"
    );
}
