//! Pollakis minimum-active-set sleep scheduling over the network graph.
//!
//! The per-corridor optimizer answers "which deployment per edge"; this
//! module answers the question it cannot ask: **which repeaters can
//! sleep entirely because a neighbor absorbs their demand?** The
//! formulation follows Pollakis et al. (arXiv 1503.08627): greedily
//! shrink the active set while every demand stays served and every
//! corridor's coverage margin stays at or above a configurable floor.
//! Two candidate families feed one greedy loop:
//!
//! * **Boundary repeaters.** Each deployed edge parks one repeater in
//!   the station throat at each of its endpoints. Where several edges
//!   meet, their boundary repeaters stand co-located with overlapping
//!   footprints — so one awake repeater can serve the combined throat
//!   demand while the others sleep, at zero margin cost. A sleeping
//!   boundary repeater saves its full daily energy (the pick's
//!   per-repeater Wh/day); the absorber pays a duty-cycle premium,
//!   re-priced analytically at own-plus-absorbed demand, and must stay
//!   within its demand capacity.
//! * **Interior repeaters** (margin trading, only when a floor below
//!   the pick's margin is configured). Every interior repeater of every
//!   deployed edge is a candidate: sleeping it spends coverage margin —
//!   priced through the same [`MarginModel`] and [`CoverageCache`] the
//!   deployment search used, with the survivors as a custom placement —
//!   and the [`MarginLedger`] refuses any spend that would cross the
//!   floor. The energy side is priced against the *simulated* network
//!   day ([`DayContext`]): the sleeper's saving is its actual traced
//!   energy, and the absorbing neighbor's premium is the energy of the
//!   hull section spanning both footprints (it must wake for every
//!   train either repeater would have served). No capacity check
//!   applies — the absorber serves the same trains, not new flows.
//!
//! The greedy loop always takes the highest net saving next, with a
//! deterministic total order over candidates ([`SleepDecision::sort_key`]:
//! station, then repeater index, then edge indices) breaking exact
//! ties — so the schedule is a pure function of the network, the picks
//! and the day, whatever the worker count or candidate evaluation
//! order. With the floor at the pick's own margin the interior family
//! is empty by construction and the schedule degenerates to the
//! boundary-only search, byte-for-byte.

use std::sync::Arc;

use corridor_core::margin::{MarginLedger, MarginModel};
use corridor_core::ScenarioError;
use corridor_deploy::{CoverageCache, PlacementPolicy};
use corridor_power::DutyCycle;
use corridor_traffic::TrackSection;
use corridor_units::{Hours, Meters};

use crate::optimize::FrontierPoint;

use super::day::DayContext;
use super::graph::CorridorNetwork;

/// One committed sleep decision of the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SleepDecision {
    /// The station the sleeping repeater is anchored at: the shared
    /// station for a boundary sleep, the edge's `a`-end for an interior
    /// one.
    pub station: usize,
    /// The edge whose repeater sleeps.
    pub edge: usize,
    /// The edge whose repeater absorbs the demand (the same edge for an
    /// interior sleep).
    pub absorber_edge: usize,
    /// The slept interior repeater's index within the edge's segment
    /// (`None` for a boundary-throat repeater).
    pub repeater: Option<usize>,
    /// Daily energy of the slept repeater, Wh.
    pub slept_wh_day: f64,
    /// The absorber's premium for the extra demand, Wh/day.
    pub absorber_delta_wh_day: f64,
    /// Net network saving: slept energy minus absorption cost, Wh/day.
    pub net_wh_day: f64,
    /// The demand handed to the absorber, trains per hour.
    pub absorbed_demand_tph: f64,
    /// Coverage margin the sleep spent, dB (zero for boundary sleeps —
    /// the throat footprints overlap entirely).
    pub margin_cost_db: f64,
}

impl SleepDecision {
    /// The deterministic total order of the schedule: station id, then
    /// repeater index (boundary throats order before interior repeater
    /// `k` as rank `k + 1`), then the sleeper and absorber edges. Equal
    /// net savings are broken by this key, so the committed plan is
    /// independent of candidate evaluation order and worker count.
    pub fn sort_key(&self) -> (usize, usize, usize, usize) {
        (
            self.station,
            self.repeater.map_or(0, |k| k + 1),
            self.edge,
            self.absorber_edge,
        )
    }
}

/// The margin-trading configuration of the scheduler: the floor, the
/// shared margin model, the per-edge coverage caches of the deployment
/// search and the simulated day the interior prices come from.
pub(crate) struct MarginTrading<'a> {
    pub(crate) floor_db: f64,
    pub(crate) model: MarginModel,
    pub(crate) caches: &'a [Arc<CoverageCache>],
    pub(crate) day: &'a DayContext,
}

/// A boundary repeater's scheduling state at one `(edge, station)` slot.
#[derive(Debug, Clone)]
struct Boundary {
    edge: usize,
    station: usize,
    /// Slept repeaters no longer exist for coverage or absorption.
    slept: bool,
    /// An absorber is pinned awake for the rest of the schedule.
    pinned: bool,
    /// Demand absorbed so far (on top of the edge's own), trains/h.
    absorbed_tph: f64,
}

/// An interior service repeater's scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RepState {
    Free,
    Slept,
    Pinned,
}

/// One margin-trading edge: the fixed day-priced candidates plus the
/// mutable repeater states.
struct InteriorEdge {
    edge: usize,
    n: usize,
    isd: Meters,
    placement: PlacementPolicy,
    /// `prices[k]` is the fixed energy price of sleeping repeater `k`
    /// into `k - 1` (`None` outside the interior range).
    prices: Vec<Option<InteriorPrice>>,
    state: Vec<RepState>,
    slept: Vec<usize>,
}

/// The day-priced energy terms of one interior candidate — fixed for
/// the whole greedy search (the day does not change as sleeps commit).
#[derive(Debug, Clone, Copy)]
struct InteriorPrice {
    slept_wh: f64,
    delta_wh: f64,
    net_wh: f64,
}

/// Prices one boundary repeater of `edge` at `tph` demand: activity
/// hours from the analytic occupancy model at the pick's geometry, then
/// a zero-idle duty cycle over the repeater power model.
fn boundary_wh_day(
    net: &CorridorNetwork,
    edge: usize,
    tph: f64,
    isd: Meters,
) -> Result<f64, ScenarioError> {
    let params = net.edge_params_with_tph(edge, tph)?;
    let section = TrackSection::around(isd / 2.0, params.lp_spacing());
    let active = corridor_core::energy::active_hours(&params, section);
    Ok(DutyCycle::over_day(active, Hours::ZERO)
        .daily_energy(params.lp_node())
        .value())
}

/// Builds the margin-trading state of every eligible edge: deployed, at
/// least three repeaters (an interior exists), and holding margin
/// strictly above the floor — at `floor == margin` the family is empty,
/// which is exactly what makes the boundary-only schedule the
/// `margin_floor = current` special case.
fn interior_edges(
    net: &CorridorNetwork,
    picks: &[Option<FrontierPoint>],
    trading: &MarginTrading<'_>,
) -> Result<Vec<InteriorEdge>, ScenarioError> {
    let mut edges = Vec::new();
    for (e, pick) in picks.iter().enumerate() {
        let Some(pick) = pick else { continue };
        let n = pick.nodes;
        if n < 3 || trading.floor_db >= pick.margin_db {
            continue;
        }
        let params = net.edge_cell(e)?.params().clone();
        let day = trading.day;
        let report = &day.reports[e];
        let nodes = day.sim.edge_nodes(e);
        let mut prices = vec![None; n];
        for k in 1..n - 1 {
            // service repeater k is segment node 1 + k; its absorbing
            // neighbor k - 1 is node k
            let slept_hours = report.nodes()[1 + k].trace().powered().hours();
            let own_hours = report.nodes()[k].trace().powered().hours();
            let hull = TrackSection::new(nodes[k].section().start(), nodes[1 + k].section().end());
            let hull_hours = day.sim.section_powered_hours(e, hull, &day.itineraries);
            let energy = |hours: Hours| {
                DutyCycle::over_day(hours, Hours::ZERO)
                    .daily_energy(params.lp_node())
                    .value()
            };
            let slept_wh = energy(slept_hours);
            let delta_wh = energy(hull_hours) - energy(own_hours);
            prices[k] = Some(InteriorPrice {
                slept_wh,
                delta_wh,
                net_wh: slept_wh - delta_wh,
            });
        }
        edges.push(InteriorEdge {
            edge: e,
            n,
            isd: pick.isd,
            placement: params.placement().clone(),
            prices,
            state: vec![RepState::Free; n],
            slept: Vec::new(),
        });
    }
    Ok(edges)
}

/// What the greedy loop picked this round.
enum Choice {
    Boundary {
        si: usize,
        ai: usize,
        before: f64,
        after: f64,
    },
    Interior {
        ie: usize,
        k: usize,
        margin_after: f64,
    },
}

/// The deterministic tie-break key — [`SleepDecision::sort_key`].
type SortKey = (usize, usize, usize, usize);

/// One round's best candidate: (net saving, tie-break key, commit).
type Candidate = (f64, SortKey, Choice);

/// Builds the minimum-active-set sleep schedule for a network whose
/// edges already have their per-corridor picks, returning the committed
/// plan (in greedy order) and each edge's residual coverage margin.
///
/// `picks[e]` is edge `e`'s selected frontier point (`None` for an
/// unsolvable edge, which neither sleeps nor absorbs); `capacity_tph`
/// caps the aggregate demand (own + absorbed) one boundary repeater may
/// serve. With `trading` set, interior repeaters join the candidate set
/// and spend margin down to (never below) the configured floor; without
/// it the search is the boundary-only schedule.
pub(crate) fn schedule_sleep(
    net: &CorridorNetwork,
    picks: &[Option<FrontierPoint>],
    capacity_tph: f64,
    trading: Option<&MarginTrading<'_>>,
) -> Result<(Vec<SleepDecision>, Vec<Option<f64>>), ScenarioError> {
    // materialize every boundary slot: deployed edges only, stations
    // where at least one *other* edge is incident (somebody must be
    // there to absorb)
    let mut slots: Vec<Boundary> = Vec::new();
    for (e, pick) in picks.iter().enumerate() {
        let Some(pick) = pick else { continue };
        if pick.nodes == 0 {
            continue;
        }
        let edge = net.edge(e);
        for station in [edge.a(), edge.b()] {
            if net.degree(station) >= 2 {
                slots.push(Boundary {
                    edge: e,
                    station,
                    slept: false,
                    pinned: false,
                    absorbed_tph: 0.0,
                });
            }
        }
    }

    // per-edge boundary budget: at most two throat repeaters (one per
    // end) and never more than the edge actually deploys
    let budget: Vec<usize> = picks
        .iter()
        .map(|p| p.as_ref().map_or(0, |p| p.nodes.min(2)))
        .collect();
    let mut slept_per_edge = vec![0usize; picks.len()];

    // the margin side: residual margins seeded from the picks, interior
    // candidates only when trading is configured
    let initial_margins: Vec<Option<f64>> = picks
        .iter()
        .map(|p| p.as_ref().map(|p| p.margin_db))
        .collect();
    let mut ledger = MarginLedger::new(
        trading.map_or(f64::NEG_INFINITY, |t| t.floor_db),
        initial_margins,
    );
    let mut interiors: Vec<InteriorEdge> = match trading {
        Some(t) => interior_edges(net, picks, t)?,
        None => Vec::new(),
    };

    let mut plan: Vec<SleepDecision> = Vec::new();
    loop {
        // evaluate every candidate still on the table; best is
        // (net saving, total-order key, what to commit)
        let mut best: Option<Candidate> = None;
        let mut offer = |net_wh: f64, key: SortKey, choice: Choice| {
            let better = match &best {
                None => true,
                Some((best_net, best_key, _)) => match net_wh.total_cmp(best_net) {
                    core::cmp::Ordering::Greater => true,
                    core::cmp::Ordering::Less => false,
                    core::cmp::Ordering::Equal => key < *best_key,
                },
            };
            if better {
                best = Some((net_wh, key, choice));
            }
        };

        for (si, sleeper) in slots.iter().enumerate() {
            if sleeper.slept || sleeper.pinned {
                continue;
            }
            if slept_per_edge[sleeper.edge] >= budget[sleeper.edge] {
                continue;
            }
            let sleeper_pick = picks[sleeper.edge]
                .as_ref()
                .ok_or(ScenarioError::Invariant(
                    "slot references an edge without a pick",
                ))?;
            let slept_wh = sleeper_pick.repeater_wh_day;
            let handed_tph = net.edge(sleeper.edge).demand_tph();
            for (ai, absorber) in slots.iter().enumerate() {
                if ai == si
                    || absorber.slept
                    || absorber.station != sleeper.station
                    || absorber.edge == sleeper.edge
                {
                    continue;
                }
                let own_tph = net.edge(absorber.edge).demand_tph();
                let before_tph = own_tph + absorber.absorbed_tph;
                let after_tph = before_tph + handed_tph;
                if after_tph > capacity_tph {
                    continue;
                }
                let absorber_pick =
                    picks[absorber.edge]
                        .as_ref()
                        .ok_or(ScenarioError::Invariant(
                            "slot references an edge without a pick",
                        ))?;
                let before = boundary_wh_day(net, absorber.edge, before_tph, absorber_pick.isd)?;
                let after = boundary_wh_day(net, absorber.edge, after_tph, absorber_pick.isd)?;
                let net_wh = slept_wh - (after - before);
                if net_wh <= 1e-9 {
                    continue;
                }
                offer(
                    net_wh,
                    (sleeper.station, 0, sleeper.edge, absorber.edge),
                    Choice::Boundary {
                        si,
                        ai,
                        before,
                        after,
                    },
                );
            }
        }

        if let Some(trading) = trading {
            for (ie, interior) in interiors.iter().enumerate() {
                let e = interior.edge;
                for k in 1..interior.n - 1 {
                    // the absorber is always the left neighbor: it must
                    // still be awake, and the sleeper still free
                    if interior.state[k] != RepState::Free
                        || interior.state[k - 1] == RepState::Slept
                    {
                        continue;
                    }
                    let Some(price) = interior.prices[k] else {
                        continue;
                    };
                    if price.net_wh <= 1e-9 {
                        continue;
                    }
                    let mut slept = interior.slept.clone();
                    slept.push(k);
                    let Some(margin_after) = trading.model.margin_without(
                        &trading.caches[e],
                        interior.n,
                        interior.isd,
                        &interior.placement,
                        &slept,
                    ) else {
                        continue;
                    };
                    if !ledger.affords(e, margin_after) {
                        continue;
                    }
                    offer(
                        price.net_wh,
                        (net.edge(e).a(), k + 1, e, e),
                        Choice::Interior {
                            ie,
                            k,
                            margin_after,
                        },
                    );
                }
            }
        }

        let Some((net_wh, _, choice)) = best else {
            break;
        };
        match choice {
            Choice::Boundary {
                si,
                ai,
                before,
                after,
            } => {
                let handed_tph = net.edge(slots[si].edge).demand_tph();
                let sleeper_pick =
                    picks[slots[si].edge]
                        .as_ref()
                        .ok_or(ScenarioError::Invariant(
                            "slot references an edge without a pick",
                        ))?;
                plan.push(SleepDecision {
                    station: slots[si].station,
                    edge: slots[si].edge,
                    absorber_edge: slots[ai].edge,
                    repeater: None,
                    slept_wh_day: sleeper_pick.repeater_wh_day,
                    absorber_delta_wh_day: after - before,
                    net_wh_day: net_wh,
                    absorbed_demand_tph: handed_tph,
                    margin_cost_db: 0.0,
                });
                slept_per_edge[slots[si].edge] += 1;
                slots[si].slept = true;
                slots[ai].pinned = true;
                slots[ai].absorbed_tph += handed_tph;
            }
            Choice::Interior {
                ie,
                k,
                margin_after,
            } => {
                let interior = &mut interiors[ie];
                let e = interior.edge;
                let price = interior.prices[k]
                    .ok_or(ScenarioError::Invariant("committed candidate has no price"))?;
                let margin_before = ledger.margin(e).ok_or(ScenarioError::Invariant(
                    "trading edge holds no margin entry",
                ))?;
                plan.push(SleepDecision {
                    station: net.edge(e).a(),
                    edge: e,
                    absorber_edge: e,
                    repeater: Some(k),
                    slept_wh_day: price.slept_wh,
                    absorber_delta_wh_day: price.delta_wh,
                    net_wh_day: net_wh,
                    absorbed_demand_tph: net.edge(e).demand_tph(),
                    margin_cost_db: margin_before - margin_after,
                });
                ledger.commit(e, margin_after);
                interior.state[k] = RepState::Slept;
                interior.state[k - 1] = RepState::Pinned;
                interior.slept.push(k);
            }
        }
    }
    // a floor *above* the picks' own margins is a valid configuration
    // (it gates every interior candidate and spends nothing), so the
    // invariant is per spend — enforced by `MarginLedger::commit` — not
    // a blanket floor check over the initial margins
    debug_assert!(
        plan.iter().all(|d| d.repeater.is_none()) || ledger.all_at_or_above_floor(),
        "committed margin spends crossed the floor"
    );
    Ok((plan, ledger.margins().to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkOptimizer, SearchSpace};

    fn quick_space() -> SearchSpace {
        SearchSpace::new().sample_step(Meters::new(10.0))
    }

    #[test]
    fn star_junction_sleeps_boundary_repeaters() {
        let net = CorridorNetwork::star(&[4.0, 8.0, 12.0]);
        let report = NetworkOptimizer::new()
            .workers(1)
            .run(&net, &quick_space())
            .unwrap();
        let plan = report.plan();
        assert!(!plan.is_empty(), "junction must admit at least one sleep");
        for d in plan {
            assert!(d.net_wh_day > 0.0);
            assert!(d.slept_wh_day > d.absorber_delta_wh_day);
            assert_eq!(d.station, 0, "star junctions sleep only at the hub");
            assert_ne!(d.edge, d.absorber_edge);
            assert_eq!(d.repeater, None, "default schedules are boundary-only");
            assert_eq!(d.margin_cost_db, 0.0);
        }
        // no boundary repeater absorbs and sleeps at once: slept edges
        // never appear as absorbers at the same station
        for d in plan {
            assert!(!plan
                .iter()
                .any(|o| o.edge == d.absorber_edge && o.station == d.station));
        }
    }

    #[test]
    fn capacity_cap_blocks_absorption() {
        let net = CorridorNetwork::star(&[4.0, 8.0, 12.0]);
        let report = NetworkOptimizer::new()
            .workers(1)
            .capacity_tph(1.0) // nobody can absorb anything
            .run(&net, &quick_space())
            .unwrap();
        assert!(report.plan().is_empty());
        assert_eq!(report.network_wh_day(), report.corridor_wh_day());
    }

    #[test]
    fn isolated_corridor_has_no_sleep_candidates() {
        // a single edge has two degree-1 endpoints: no neighbor can
        // absorb, so the schedule is empty and the network total equals
        // the per-corridor total
        let net = CorridorNetwork::line(&[8.0]);
        let report = NetworkOptimizer::new()
            .workers(1)
            .run(&net, &quick_space())
            .unwrap();
        assert!(report.plan().is_empty());
        assert_eq!(report.network_wh_day(), report.corridor_wh_day());
    }

    #[test]
    fn schedule_is_deterministic() {
        let net = CorridorNetwork::by_name("wye3").unwrap();
        let a = NetworkOptimizer::new()
            .workers(1)
            .run(&net, &quick_space())
            .unwrap();
        let b = NetworkOptimizer::new()
            .workers(4)
            .run(&net, &quick_space())
            .unwrap();
        assert_eq!(a.plan(), b.plan());
        assert_eq!(a.schedule_csv(), b.schedule_csv());
    }

    #[test]
    fn sort_key_totally_orders_shuffled_decisions() {
        let decision = |station, repeater, edge, absorber| SleepDecision {
            station,
            edge,
            absorber_edge: absorber,
            repeater,
            slept_wh_day: 1.0,
            absorber_delta_wh_day: 0.5,
            net_wh_day: 0.5,
            absorbed_demand_tph: 8.0,
            margin_cost_db: 0.0,
        };
        let canonical = vec![
            decision(0, None, 0, 1),
            decision(0, None, 0, 2),
            decision(0, None, 1, 0),
            decision(0, Some(0), 0, 0),
            decision(0, Some(3), 2, 2),
            decision(1, None, 4, 3),
            decision(2, Some(1), 5, 5),
        ];
        // boundary throats (rank 0) order before interior repeater k
        // (rank k + 1) at the same station
        assert!(decision(0, None, 9, 9).sort_key() < decision(0, Some(0), 0, 0).sort_key());
        for rotation in 0..canonical.len() {
            let mut shuffled = canonical.clone();
            shuffled.rotate_left(rotation);
            shuffled.reverse();
            shuffled.sort_by_key(SleepDecision::sort_key);
            assert_eq!(shuffled, canonical, "rotation {rotation}");
        }
    }
}
