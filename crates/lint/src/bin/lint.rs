//! The `lint` binary: runs the workspace-invariant pass and reports.
//!
//! ```text
//! lint [--root <dir>] [--json <path>] [--list-rules]
//! ```
//!
//! Human-readable diagnostics go to stdout; `--json` additionally
//! writes the machine-readable report (CI uploads it as a build
//! artifact). Exit status: `0` clean, `1` violations found, `2` the
//! pass itself failed (bad root, unreadable file).

use std::env;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use corridor_lint::rules::Rule;
use corridor_lint::{run_workspace, LintReport};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a path"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a path"),
            },
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{:<16} {}", rule.id(), rule.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: lint [--root <dir>] [--json <path>] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument: {other}")),
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(root) => root,
        None => {
            eprintln!("lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match run_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("lint: {err}");
            return ExitCode::from(2);
        }
    };

    print_human(&report);
    if let Some(path) = json {
        if let Err(err) = fs::write(&path, render_json(&report)) {
            eprintln!("lint: cannot write JSON report {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("lint: {message}");
    eprintln!("usage: lint [--root <dir>] [--json <path>] [--list-rules]");
    ExitCode::from(2)
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// holding a `[workspace]` table.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn print_human(report: &LintReport) {
    println!(
        "corridor_lint: scanned {} files under {}",
        report.files_scanned,
        report.root.display()
    );
    for diagnostic in &report.diagnostics {
        println!("{diagnostic}");
    }
    let declared = report.waivers.len();
    let used = report.waivers.iter().filter(|w| w.used).count();
    println!("waivers: {declared} declared, {used} used");
    for stale in report.unused_waivers() {
        println!(
            "note: unused waiver at {}:{} ({})",
            stale.file, stale.line, stale.rule_id
        );
    }
    if report.is_clean() {
        println!("LINT OK");
    } else {
        println!("LINT FAIL: {} violation(s)", report.diagnostics.len());
    }
}

/// Renders the machine-readable report (stable field order, sorted
/// entries — the artifact is diffable between CI runs).
fn render_json(report: &LintReport) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"files_scanned\": {},\n  \"violation_count\": {},\n  \"waiver_count\": {},",
        report.files_scanned,
        report.diagnostics.len(),
        report.waivers.len()
    );
    out.push_str("  \"violations\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let comma = if i + 1 < report.diagnostics.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"snippet\": {}}}{comma}",
            json_string(&d.file),
            d.line,
            json_string(d.rule_id),
            json_string(&d.snippet)
        );
    }
    out.push_str("  ],\n  \"waivers\": [\n");
    for (i, w) in report.waivers.iter().enumerate() {
        let comma = if i + 1 < report.waivers.len() {
            ","
        } else {
            ""
        };
        let reason = match &w.reason {
            Some(reason) => json_string(reason),
            None => "null".to_string(),
        };
        let _ = writeln!(
            out,
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}, \"used\": {}}}{comma}",
            json_string(&w.file),
            w.line,
            json_string(&w.rule_id),
            reason,
            w.used
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
