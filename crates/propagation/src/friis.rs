//! Free-space (Friis) and calibrated-Friis path loss.

use corridor_units::{Db, Hertz, Meters};

use crate::PathLoss;

/// Free-space path loss: `L(d) = (4π d / λ)^2`.
///
/// # Examples
///
/// ```
/// use corridor_propagation::{FreeSpace, PathLoss};
/// use corridor_units::{Hertz, Meters};
///
/// let fs = FreeSpace::new(Hertz::from_ghz(3.5));
/// // canonical value: FSPL(1 km, 3.5 GHz) ≈ 103.3 dB
/// let loss = fs.attenuation(Meters::new(1000.0));
/// assert!((loss.value() - 103.3).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FreeSpace {
    frequency: Hertz,
    min_distance: Meters,
}

impl FreeSpace {
    /// Creates a free-space model at `frequency` with a 1 m near-field guard.
    pub fn new(frequency: Hertz) -> Self {
        FreeSpace {
            frequency,
            min_distance: Meters::new(1.0),
        }
    }

    /// Overrides the near-field guard distance.
    #[must_use]
    pub fn with_min_distance(mut self, min_distance: Meters) -> Self {
        self.min_distance = min_distance;
        self
    }

    /// The carrier frequency.
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// `20·log10(4π/λ)`: the frequency-dependent constant of the model.
    pub fn frequency_constant_db(&self) -> Db {
        let lambda = self.frequency.wavelength().value();
        Db::new(20.0 * (4.0 * std::f64::consts::PI / lambda).log10())
    }
}

impl PathLoss for FreeSpace {
    fn attenuation(&self, distance: Meters) -> Db {
        let d = distance.abs().max(self.min_distance).value();
        Db::new(20.0 * d.log10()) + self.frequency_constant_db()
    }

    fn min_distance(&self) -> Meters {
        self.min_distance
    }
}

/// The paper's port-to-port attenuation (eq. (1)):
/// `L(d) = (d − d_a)^2 (4π/λ)^2 · L_calib`.
///
/// A fixed calibration factor accounts for antenna-dependent losses into the
/// train wagons: 33 dB for the high-power RRH link and 20 dB for the
/// low-power repeater link in the paper (in line with the measurement
/// campaigns of refs. \[17\], \[18\]).
///
/// # Examples
///
/// ```
/// use corridor_propagation::{CalibratedFriis, FreeSpace, PathLoss};
/// use corridor_units::{Db, Hertz, Meters};
///
/// let hp = CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(33.0));
/// let fs = FreeSpace::new(Hertz::from_ghz(3.7));
/// let d = Meters::new(500.0);
/// let delta = hp.attenuation(d) - fs.attenuation(d);
/// assert!((delta.value() - 33.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CalibratedFriis {
    free_space: FreeSpace,
    calibration: Db,
}

impl CalibratedFriis {
    /// Creates a calibrated Friis model.
    pub fn new(frequency: Hertz, calibration: Db) -> Self {
        CalibratedFriis {
            free_space: FreeSpace::new(frequency),
            calibration,
        }
    }

    /// Overrides the near-field guard distance.
    #[must_use]
    pub fn with_min_distance(mut self, min_distance: Meters) -> Self {
        self.free_space = self.free_space.with_min_distance(min_distance);
        self
    }

    /// The carrier frequency.
    pub fn frequency(&self) -> Hertz {
        self.free_space.frequency()
    }

    /// The calibration factor `L_calib`.
    pub fn calibration(&self) -> Db {
        self.calibration
    }
}

impl PathLoss for CalibratedFriis {
    fn attenuation(&self, distance: Meters) -> Db {
        self.free_space.attenuation(distance) + self.calibration
    }

    fn min_distance(&self) -> Meters {
        self.free_space.min_distance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs35() -> FreeSpace {
        FreeSpace::new(Hertz::from_ghz(3.5))
    }

    #[test]
    fn free_space_canonical_values() {
        // FSPL(d, f) = 20 log10(d_km) + 20 log10(f_MHz) + 32.44
        let cases = [
            (100.0, 3500.0, 83.32),
            (1000.0, 3500.0, 103.32),
            (250.0, 3700.0, 91.76),
        ];
        for (d_m, f_mhz, expected) in cases {
            let model = FreeSpace::new(Hertz::from_mhz(f_mhz));
            let got = model.attenuation(Meters::new(d_m)).value();
            assert!(
                (got - expected).abs() < 0.05,
                "FSPL({d_m} m, {f_mhz} MHz) = {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn doubling_distance_adds_6db() {
        let model = fs35();
        let l1 = model.attenuation(Meters::new(200.0));
        let l2 = model.attenuation(Meters::new(400.0));
        assert!(((l2 - l1).value() - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn near_field_clamps() {
        let model = fs35();
        assert_eq!(
            model.attenuation(Meters::ZERO),
            model.attenuation(Meters::new(1.0))
        );
        assert_eq!(
            model.attenuation(Meters::new(0.5)),
            model.attenuation(Meters::new(1.0))
        );
        let guarded = fs35().with_min_distance(Meters::new(10.0));
        assert_eq!(
            guarded.attenuation(Meters::new(3.0)),
            guarded.attenuation(Meters::new(10.0))
        );
    }

    #[test]
    fn negative_distance_treated_as_magnitude() {
        let model = fs35();
        assert_eq!(
            model.attenuation(Meters::new(-250.0)),
            model.attenuation(Meters::new(250.0))
        );
    }

    #[test]
    fn calibration_shifts_uniformly() {
        let calib = CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(20.0));
        let base = FreeSpace::new(Hertz::from_ghz(3.7));
        for d in [1.0, 50.0, 500.0, 2650.0] {
            let delta = calib.attenuation(Meters::new(d)) - base.attenuation(Meters::new(d));
            assert!((delta.value() - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_hp_attenuation_ballpark() {
        // HP model at 3.7 GHz, 33 dB calib: at 250 m the attenuation should
        // put a 28.8 dBm/subcarrier RSTP near -96 dBm RSRP (paper Fig. 3
        // drops below -100 dBm a little past 250 m).
        let hp = CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(33.0));
        let l = hp.attenuation(Meters::new(250.0)).value();
        assert!((l - 124.76).abs() < 0.1, "got {l}");
    }

    #[test]
    fn accessors() {
        let hp = CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(33.0));
        assert_eq!(hp.frequency(), Hertz::from_ghz(3.7));
        assert_eq!(hp.calibration(), Db::new(33.0));
        assert_eq!(fs35().frequency(), Hertz::from_ghz(3.5));
    }
}
