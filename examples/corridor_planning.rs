//! Plan a full railway corridor: pick the repeater count that minimizes
//! annual energy for a given line length and print the bill of materials.
//!
//! Run with `cargo run --release --example corridor_planning`.

use railway_corridor::prelude::*;

/// Length of the corridor to plan.
const LINE_KM: f64 = 50.0;

fn main() {
    let params = ScenarioParams::paper_default();

    // sweep the achievable ISD per node count with the calibrated model
    let optimizer =
        IsdOptimizer::new(params.budget().clone()).with_placement(params.placement().clone());
    let table = optimizer.sweep(10);
    println!("achievable inter-site distances (computed):\n{table}");

    // evaluate annual mains energy for every option, sleep-mode repeaters
    let hours_per_year = 24.0 * 365.0;
    let mut best: Option<(usize, Meters, f64)> = None;
    println!("option evaluation for a {LINE_KM:.0} km line (sleep-mode repeaters):");
    println!(
        "{:>6} {:>9} {:>10} {:>12} {:>10}",
        "nodes", "ISD [m]", "masts", "MWh/year", "savings"
    );
    let baseline =
        energy::conventional_baseline(&params).total().value() * LINE_KM * hours_per_year / 1e6;
    for (n, isd) in table.iter() {
        let deployment =
            energy::average_power_per_km(&params, n, isd, EnergyStrategy::SleepModeRepeaters);
        let mwh_year = deployment.total().value() * LINE_KM * hours_per_year / 1e6;
        let masts = (LINE_KM * 1000.0 / isd.value()).ceil() as usize + 1;
        let savings = 1.0 - mwh_year / baseline;
        println!(
            "{n:>6} {:>9.0} {masts:>10} {mwh_year:>12.1} {:>9.1} %",
            isd.value(),
            savings * 100.0
        );
        if best.is_none_or(|(_, _, best_mwh)| mwh_year < best_mwh) {
            best = Some((n, isd, mwh_year));
        }
    }

    let (n, isd, mwh) = best.expect("at least one option");
    let inventory = SegmentInventory::for_nodes(n, isd);
    let segments = (LINE_KM * 1000.0 / isd.value()).ceil() as usize;
    println!("\nselected plan: {n} repeater(s) per segment at ISD {isd}");
    println!("  segments:        {segments}");
    println!("  HP masts:        {}", segments + 1);
    println!(
        "  service nodes:   {}",
        segments * inventory.service_nodes()
    );
    println!("  donor nodes:     {}", segments * inventory.donor_nodes());
    println!("  annual energy:   {mwh:.1} MWh (baseline {baseline:.1} MWh)");

    // if the repeaters go solar, the repeater share of that energy is zero
    let solar =
        energy::average_power_per_km(&params, n, isd, EnergyStrategy::SolarPoweredRepeaters);
    let solar_mwh = solar.total().value() * LINE_KM * hours_per_year / 1e6;
    println!(
        "  with solar nodes: {solar_mwh:.1} MWh ({:.1} % below baseline)",
        (1.0 - solar_mwh / baseline) * 100.0
    );

    // verify the selected plan really keeps peak throughput
    let layout =
        CorridorLayout::with_policy(isd, n, params.placement()).expect("plan is placeable");
    let profile = layout.coverage_profile(params.budget(), Meters::new(5.0));
    println!(
        "  coverage check:  min SNR {:.1} dB (peak requires ≥ 29 dB)",
        profile.min_snr().unwrap().value()
    );
}
