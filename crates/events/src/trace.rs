//! The energy integrator: per-state time accounting for one node.

use corridor_power::{DutyCycle, LoadDependentPower};
use corridor_units::{Hours, Seconds, WattHours, Watts};

use crate::NodeState;

/// Accumulated per-state time of one node over the simulation horizon,
/// plus wake statistics.
///
/// The integrator bills the three powered states (`Waking`, `Active`,
/// `Drain`) at full load and the remainder of the horizon at the
/// strategy's fallback state, reusing the exact
/// [`DutyCycle`] arithmetic of the closed-form model — which is what
/// lets the differential harness pin the two backends against each other
/// to fractions of a percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateTrace {
    horizon: Seconds,
    asleep: Seconds,
    waking: Seconds,
    active: Seconds,
    drain: Seconds,
    wakes: usize,
    uncovered: Seconds,
}

impl StateTrace {
    /// An empty trace over the given horizon.
    ///
    /// # Panics
    ///
    /// Panics if the horizon is not strictly positive.
    pub fn new(horizon: Seconds) -> Self {
        assert!(horizon.value() > 0.0, "horizon must be positive");
        StateTrace {
            horizon,
            asleep: Seconds::ZERO,
            waking: Seconds::ZERO,
            active: Seconds::ZERO,
            drain: Seconds::ZERO,
            wakes: 0,
            uncovered: Seconds::ZERO,
        }
    }

    /// Adds `duration` spent in `state` (negative durations are clamped
    /// to zero).
    pub(crate) fn add(&mut self, state: NodeState, duration: Seconds) {
        let duration = duration.max(Seconds::ZERO);
        match state {
            NodeState::Asleep => self.asleep += duration,
            NodeState::Waking => self.waking += duration,
            NodeState::Active => self.active += duration,
            NodeState::Drain => self.drain += duration,
        }
    }

    /// Records one asleep→waking transition.
    pub(crate) fn count_wake(&mut self) {
        self.wakes += 1;
    }

    /// Adds time during which a train was in the section while the node
    /// was still waking.
    pub(crate) fn add_uncovered(&mut self, duration: Seconds) {
        self.uncovered += duration.max(Seconds::ZERO);
    }

    /// The simulation horizon this trace covers.
    pub fn horizon(&self) -> Seconds {
        self.horizon
    }

    /// Time asleep.
    pub fn asleep(&self) -> Seconds {
        self.asleep
    }

    /// Time in the wake transition.
    pub fn waking(&self) -> Seconds {
        self.waking
    }

    /// Time fully operational.
    pub fn active(&self) -> Seconds {
        self.active
    }

    /// Time in the post-train guard interval.
    pub fn drain(&self) -> Seconds {
        self.drain
    }

    /// Total powered time (waking + active + drain).
    pub fn powered(&self) -> Seconds {
        self.waking + self.active + self.drain
    }

    /// Number of asleep→waking transitions.
    pub fn wakes(&self) -> usize {
        self.wakes
    }

    /// Total time a train was in the section while the node was not yet
    /// operational (the wake-latency coverage gap).
    pub fn uncovered(&self) -> Seconds {
        self.uncovered
    }

    /// The equivalent duty cycle over the horizon: powered time at full
    /// load, no idle time, the remainder in the fallback state.
    ///
    /// # Panics
    ///
    /// Panics if the accumulated powered time exceeds the horizon (the
    /// simulator never produces such a trace).
    pub fn duty_cycle(&self) -> DutyCycle {
        DutyCycle::new(self.powered().hours(), Hours::ZERO, self.horizon.hours())
            // corridor-lint: allow(no-panic, reason = "documented `# Panics` API: the simulator clamps powered time to the horizon by construction")
            .expect("powered time is within the horizon")
    }

    /// Time-averaged power with the horizon remainder asleep.
    pub fn average_power(&self, model: &LoadDependentPower) -> Watts {
        self.duty_cycle().average_power(model)
    }

    /// Time-averaged power when the node cannot sleep (remainder idles
    /// at `P0` — the continuous-operation strategy).
    pub fn average_power_idle_fallback(&self, model: &LoadDependentPower) -> Watts {
        self.duty_cycle().average_power_idle_fallback(model)
    }

    /// Energy over one day with a sleeping remainder.
    pub fn daily_energy(&self, model: &LoadDependentPower) -> WattHours {
        self.duty_cycle().daily_energy(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_power::catalog;

    fn sec(v: f64) -> Seconds {
        Seconds::new(v)
    }

    #[test]
    fn accumulates_per_state() {
        let mut t = StateTrace::new(Seconds::new(86_400.0));
        t.add(NodeState::Asleep, sec(100.0));
        t.add(NodeState::Waking, sec(1.0));
        t.add(NodeState::Active, sec(20.0));
        t.add(NodeState::Drain, sec(0.5));
        t.add(NodeState::Active, sec(-5.0)); // clamped
        t.count_wake();
        assert_eq!(t.asleep(), sec(100.0));
        assert_eq!(t.waking(), sec(1.0));
        assert_eq!(t.active(), sec(20.0));
        assert_eq!(t.drain(), sec(0.5));
        assert_eq!(t.powered(), sec(21.5));
        assert_eq!(t.wakes(), 1);
    }

    #[test]
    fn matches_closed_form_duty_cycle() {
        // the paper's service repeater: 0.456 h powered per day
        let mut t = StateTrace::new(Seconds::new(86_400.0));
        t.add(NodeState::Active, Hours::new(0.456).seconds());
        let model = catalog::low_power_repeater_measured();
        let reference = DutyCycle::over_day(Hours::new(0.456), Hours::ZERO);
        // the seconds→hours round trip may wiggle the last ulp
        assert!(
            (t.average_power(&model).value() - reference.average_power(&model).value()).abs()
                < 1e-9
        );
        assert!(
            (t.daily_energy(&model).value() - reference.daily_energy(&model).value()).abs() < 1e-9
        );
        assert!((t.daily_energy(&model).value() - 124.07).abs() < 0.1);
    }

    #[test]
    fn idle_fallback_exceeds_sleep_fallback() {
        let mut t = StateTrace::new(Seconds::new(86_400.0));
        t.add(NodeState::Active, sec(3600.0));
        let model = catalog::low_power_repeater_measured();
        assert!(t.average_power_idle_fallback(&model) > t.average_power(&model));
    }

    #[test]
    fn uncovered_accumulates() {
        let mut t = StateTrace::new(Seconds::new(1000.0));
        t.add_uncovered(sec(0.3));
        t.add_uncovered(sec(0.2));
        t.add_uncovered(sec(-1.0));
        assert!((t.uncovered().value() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let _ = StateTrace::new(Seconds::ZERO);
    }
}
