//! Fixture: total order instead of a cast-based key.

pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}
