//! Regenerates the paper's Table IV: PVGIS-style sizing results for the
//! four exemplary regions over one year.
//!
//! The rendering lives in [`corridor_bench::render`] so the golden-file
//! test can assert it against `docs/results/`.

fn main() {
    print!("{}", corridor_bench::render::table4());
}
