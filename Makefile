# Offline mirror of .github/workflows/ci.yml — `make ci` runs the same gate.

RUSTDOCFLAGS_STRICT := -D missing_docs -D warnings

.PHONY: ci fmt-check clippy lint build test golden differential mc optimize network-smoke network-differential serve-smoke cache-determinism doc quickstart bench-build bench-sweep bench-mc bench-optimize bench-snapshot results

ci: fmt-check clippy lint build test golden differential mc optimize network-smoke network-differential serve-smoke cache-determinism doc quickstart bench-build bench-sweep bench-mc bench-optimize

fmt-check:
	cargo fmt --all --check

# Workspace-invariant static analysis (determinism, NaN-safety,
# no-panic); see docs/lints.md. Writes the machine-readable report that
# CI uploads as a build artifact.
lint:
	cargo run -q --release -p corridor_lint --bin lint -- --json target/lint-report.json

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

build:
	cargo build --release --workspace

test:
	cargo test -q --workspace

# Byte-exact regression against the committed reproduction outputs.
golden:
	cargo test -q --test golden_outputs

# Analytic ↔ event-driven differential harness (< 0.1 % on paper scenarios).
differential:
	cargo test -q --test differential

# Monte-Carlo smoke: 3-cell grid x 10 replications, byte-diffed against
# the committed golden (plus the engine's own determinism/convergence suite).
mc:
	cargo run -q --release -p corridor_bench --bin mc -- --smoke | diff - docs/results/mc_smoke.txt
	cargo test -q -p corridor_sim --test mc

# Deployment-optimizer smoke: 3-cell grid through the cached model-grid
# search, byte-diffed against the committed golden (plus the optimizer's
# own edge-case/determinism/sha256 suite).
optimize:
	cargo run -q --release -p corridor_bench --bin optimize -- --smoke | diff - docs/results/optimize_smoke.txt
	cargo test -q -p corridor_sim --test optimize

# Rail-network smoke: the wye3 junction through the per-edge frontier
# search and the demand-aware sleep scheduler, byte-diffed against the
# committed golden (plus the network graph/scheduler/differential suite).
network-smoke:
	cargo run -q --release -p corridor_bench --bin network -- --smoke | diff - docs/results/network_smoke.txt
	cargo test -q -p corridor_sim --test network

# Network-day differential: the time-domain backend over the topology
# (routed itineraries, junction-consistent days) and the Pollakis
# margin-trading scheduler — SHA-pinned reproduction of the boundary-only
# schedule at `margin_floor = current margin`, interior-sleep wins under
# a relaxed floor, and floor properties over random topologies.
network-differential:
	cargo test -q -p corridor_sim --test network_day

# Streaming serve smoke: the sharded worker-process service answers the
# committed requests with the committed byte stream (mixed-8 sweep in
# both formats across 2 shards), plus the serve fault-injection suite.
serve-smoke:
	printf 'sweep grid=mixed-8 format=csv shards=2\nsweep grid=mixed-8 format=json shards=2\n' \
		| cargo run -q --release -p corridor_bench --bin serve \
		| diff - docs/results/serve_smoke.txt
	cargo test -q --release -p corridor_bench --test serve

# Cache determinism: the streamed bytes equal the in-memory writers'
# (sha256-pinned) and a warm re-run is byte-identical at a 100 % hit
# rate — engine suites plus an end-to-end cold/warm diff of the sweep
# binary's --stream/--cache path.
cache-determinism:
	cargo test -q -p corridor_sim --test streaming_equivalence
	cargo test -q -p corridor_sim --test result_cache
	rm -rf target/tmp-cache-determinism
	mkdir -p target/tmp-cache-determinism
	cargo run -q --release -p corridor_bench --bin sweep -- --demo \
		--stream target/tmp-cache-determinism/cold.csv --cache target/tmp-cache-determinism/cache
	cargo run -q --release -p corridor_bench --bin sweep -- --demo \
		--stream target/tmp-cache-determinism/warm.csv --cache target/tmp-cache-determinism/cache
	cmp target/tmp-cache-determinism/cold.csv target/tmp-cache-determinism/warm.csv
	rm -rf target/tmp-cache-determinism

doc:
	RUSTDOCFLAGS="$(RUSTDOCFLAGS_STRICT)" cargo doc --no-deps --workspace

quickstart:
	cargo run --release --example quickstart

bench-build:
	cargo bench -p corridor_bench --no-run

# Smoke-run the serial-vs-parallel sweep bench (prints the speedup line).
bench-sweep:
	cargo bench -q -p corridor_bench --bench sweep_parallel

# Smoke-run the Monte-Carlo bench (prints cell-days/s and the speedup).
bench-mc:
	cargo bench -q -p corridor_bench --bench mc

# Smoke-run the optimizer bench (prints configs/s and the cache hit rate,
# and asserts the >= 2x profile saving over the naive per-step sweep).
bench-optimize:
	cargo bench -q -p corridor_bench --bench optimize

# Regenerate the committed BENCH_*.json throughput snapshots at the repo
# root, then re-verify this machine against them (>20 % drop fails).
# Run on a quiet machine; the snapshots are committed like goldens.
bench-snapshot:
	cargo run -q --release -p corridor_bench --bin bench_snapshot
	BENCH_SNAPSHOT_VERIFY=1 cargo test -q --release -p corridor_bench --test bench_snapshots

# Regenerate the committed reference outputs under docs/results/.
results:
	for b in headline table1 table2 table3 table4 fig3 fig4 isd_sweep; do \
		cargo run -q --release -p corridor_bench --bin $$b > docs/results/$$b.txt || exit 1; \
	done
	cargo run -q --release -p corridor_bench --bin simulate -- --stats > docs/results/poisson_stats.txt
	cargo run -q --release -p corridor_bench --bin mc -- --smoke > docs/results/mc_smoke.txt
	cargo run -q --release -p corridor_bench --bin optimize -- --smoke > docs/results/optimize_smoke.txt
	cargo run -q --release -p corridor_bench --bin network -- --smoke > docs/results/network_smoke.txt
