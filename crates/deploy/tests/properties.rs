//! Property-based tests for deployment and optimization invariants.

use corridor_deploy::{
    CorridorLayout, CoverageCriterion, IsdOptimizer, LinkBudget, PlacementPolicy, SegmentInventory,
};
use corridor_units::{Db, Meters};
use proptest::prelude::*;

proptest! {
    /// Placement positions are sorted, strictly inside the segment, and of
    /// the requested count, for both built-in policies.
    #[test]
    fn placement_invariants(n in 0usize..12, isd in 300.0..4000.0f64) {
        for policy in [PlacementPolicy::paper_default(), PlacementPolicy::EvenlySpaced] {
            match policy.positions(n, Meters::new(isd)) {
                Ok(pos) => {
                    prop_assert_eq!(pos.len(), n);
                    for w in pos.windows(2) {
                        prop_assert!(w[0] < w[1]);
                    }
                    if n > 0 {
                        prop_assert!(pos[0].value() > 0.0);
                        prop_assert!(pos[n - 1].value() < isd);
                    }
                }
                Err(_) => {
                    // only the fixed-spacing cluster can fail, and only when
                    // it genuinely does not fit
                    prop_assert!(matches!(policy, PlacementPolicy::FixedSpacing(_)));
                    prop_assert!(200.0 * (n as f64 - 1.0) >= isd);
                }
            }
        }
    }

    /// Fixed-spacing placement is symmetric about the segment midpoint.
    #[test]
    fn placement_symmetry(n in 1usize..10, isd in 2000.0..4000.0f64) {
        let pos = PlacementPolicy::paper_default().positions(n, Meters::new(isd)).unwrap();
        for (i, p) in pos.iter().enumerate() {
            let mirror = pos[n - 1 - i];
            let reflected = isd - p.value();
            prop_assert!((mirror.value() - reflected).abs() < 1e-9);
        }
    }

    /// Min SNR of a layout is non-increasing in the ISD (the assumption
    /// behind the optimizer's binary search).
    #[test]
    fn min_snr_monotone_in_isd(n in 0usize..6, base in 1500.0..2500.0f64, delta in 50.0..1000.0f64) {
        let budget = LinkBudget::paper_default();
        let policy = PlacementPolicy::paper_default();
        let step = Meters::new(20.0);
        let small = CorridorLayout::with_policy(Meters::new(base), n, &policy).unwrap();
        let large = CorridorLayout::with_policy(Meters::new(base + delta), n, &policy).unwrap();
        let snr_small = small.coverage_profile(&budget, step).min_snr().unwrap();
        let snr_large = large.coverage_profile(&budget, step).min_snr().unwrap();
        prop_assert!(snr_large <= snr_small + Db::new(0.05),
            "min SNR rose from {} to {} when stretching {} -> {}",
            snr_small, snr_large, base, base + delta);
    }

    /// More repeaters never shrink the achievable ISD.
    #[test]
    fn more_nodes_never_worse(threshold in 27.0..31.0f64) {
        let opt = IsdOptimizer::new(LinkBudget::paper_default())
            .with_criterion(CoverageCriterion::MinSnr(Db::new(threshold)))
            .with_sample_step(Meters::new(20.0));
        let a = opt.max_isd(1);
        let b = opt.max_isd(2);
        match (a, b) {
            (Some(a), Some(b)) => prop_assert!(b >= a),
            (Some(_), None) => prop_assert!(false, "two nodes unsolvable but one solvable"),
            _ => {}
        }
    }

    /// Inventory per-km figures scale linearly with segment density.
    #[test]
    fn inventory_scaling(n in 0usize..12, isd in 200.0..4000.0f64) {
        let seg = SegmentInventory::for_nodes(n, Meters::new(isd));
        let per_km = 1000.0 / isd;
        prop_assert!((seg.masts_per_km() - per_km).abs() < 1e-9);
        prop_assert!((seg.service_nodes_per_km() - n as f64 * per_km).abs() < 1e-9);
        prop_assert!(seg.donor_nodes() <= 2);
        prop_assert_eq!(seg.total_repeaters(), seg.service_nodes() + seg.donor_nodes());
    }
}
