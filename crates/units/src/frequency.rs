//! Frequency and wavelength.

use core::fmt;
use core::ops::{Div, Mul};

use crate::Meters;

/// Speed of light in vacuum, metres per second.
pub const SPEED_OF_LIGHT_M_PER_S: f64 = 299_792_458.0;

/// A frequency in hertz.
///
/// # Examples
///
/// ```
/// use corridor_units::Hertz;
/// let carrier = Hertz::from_ghz(3.7);
/// assert_eq!(carrier.megahertz(), 3700.0);
/// assert!((carrier.wavelength().value() - 0.08102).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Hertz(f64);

impl Hertz {
    /// Creates a frequency of `value` hertz.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Hertz(value)
    }

    /// Creates a frequency from kilohertz.
    #[inline]
    pub const fn from_khz(khz: f64) -> Self {
        Hertz(khz * 1e3)
    }

    /// Creates a frequency from megahertz.
    #[inline]
    pub const fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub const fn from_ghz(ghz: f64) -> Self {
        Hertz(ghz * 1e9)
    }

    /// Returns the raw value in hertz.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Total order over the raw value, as [`f64::total_cmp`]: NaN sorts
    /// after `+inf`, so comparison-based searches order NaN last instead
    /// of panicking or silently dropping elements.
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Returns the value in kilohertz.
    #[inline]
    pub fn kilohertz(self) -> f64 {
        self.0 / 1e3
    }

    /// Returns the value in megahertz.
    #[inline]
    pub fn megahertz(self) -> f64 {
        self.0 / 1e6
    }

    /// Returns the value in gigahertz.
    #[inline]
    pub fn gigahertz(self) -> f64 {
        self.0 / 1e9
    }

    /// Free-space wavelength `λ = c / f`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for non-positive frequencies.
    #[inline]
    pub fn wavelength(self) -> Meters {
        debug_assert!(self.0 > 0.0, "wavelength of non-positive frequency");
        Meters::new(SPEED_OF_LIGHT_M_PER_S / self.0)
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3} GHz", self.gigahertz())
        } else if self.0 >= 1e6 {
            write!(f, "{:.3} MHz", self.megahertz())
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} kHz", self.kilohertz())
        } else {
            write!(f, "{:.1} Hz", self.0)
        }
    }
}

impl Mul<f64> for Hertz {
    type Output = Hertz;
    #[inline]
    fn mul(self, rhs: f64) -> Hertz {
        Hertz(self.0 * rhs)
    }
}

impl Div<f64> for Hertz {
    type Output = Hertz;
    #[inline]
    fn div(self, rhs: f64) -> Hertz {
        Hertz(self.0 / rhs)
    }
}

impl Div for Hertz {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Hertz) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Hertz::from_ghz(3.5), Hertz::from_mhz(3500.0));
        assert_eq!(Hertz::from_mhz(1.0), Hertz::from_khz(1000.0));
        assert_eq!(Hertz::from_khz(1.0), Hertz::new(1000.0));
    }

    #[test]
    fn wavelength_of_known_bands() {
        // 3.5 GHz (n78): ~8.57 cm
        assert!((Hertz::from_ghz(3.5).wavelength().value() - 0.08565).abs() < 1e-4);
        // 28 GHz mmWave: ~1.07 cm
        assert!((Hertz::from_ghz(28.0).wavelength().value() - 0.010_707).abs() < 1e-5);
    }

    #[test]
    fn accessors() {
        let f = Hertz::from_ghz(3.7);
        assert!((f.gigahertz() - 3.7).abs() < 1e-12);
        assert!((f.megahertz() - 3700.0).abs() < 1e-9);
        assert!((f.kilohertz() - 3_700_000.0).abs() < 1e-6);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(Hertz::from_ghz(3.7).to_string(), "3.700 GHz");
        assert_eq!(Hertz::from_mhz(100.0).to_string(), "100.000 MHz");
        assert_eq!(Hertz::from_khz(30.0).to_string(), "30.000 kHz");
        assert_eq!(Hertz::new(50.0).to_string(), "50.0 Hz");
    }

    #[test]
    fn scaling() {
        assert_eq!(Hertz::from_mhz(100.0) / 2.0, Hertz::from_mhz(50.0));
        assert_eq!(Hertz::from_mhz(100.0) * 2.0, Hertz::from_mhz(200.0));
        assert!((Hertz::from_ghz(2.0) / Hertz::from_ghz(1.0) - 2.0).abs() < 1e-12);
    }
}
