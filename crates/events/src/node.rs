//! Node specifications: what the simulator simulates.

use core::fmt;

use corridor_deploy::SegmentInventory;
use corridor_traffic::TrackSection;
use corridor_units::Meters;

/// The role of a radio node in the corridor segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A high-power mast serving one full inter-site distance.
    HighPowerMast,
    /// A low-power service repeater covering the span around its
    /// catenary mast.
    ServiceRepeater,
    /// A low-power donor repeater feeding the wireless fronthaul; active
    /// whenever a train is anywhere in the segment.
    DonorRepeater,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeKind::HighPowerMast => "hp-mast",
            NodeKind::ServiceRepeater => "service",
            NodeKind::DonorRepeater => "donor",
        })
    }
}

/// One node to simulate: its role and the track section whose occupancy
/// drives its wake state machine.
///
/// # Examples
///
/// ```
/// use corridor_events::{NodeKind, NodeSpec};
/// use corridor_traffic::TrackSection;
/// use corridor_units::Meters;
///
/// let spec = NodeSpec::new(
///     NodeKind::HighPowerMast,
///     TrackSection::new(Meters::ZERO, Meters::new(2650.0)),
/// );
/// assert_eq!(spec.kind(), NodeKind::HighPowerMast);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    kind: NodeKind,
    section: TrackSection,
}

impl NodeSpec {
    /// A node of `kind` watching `section`.
    pub fn new(kind: NodeKind, section: TrackSection) -> Self {
        NodeSpec { kind, section }
    }

    /// The node's role.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The coverage section driving the node's occupancy.
    pub fn section(&self) -> TrackSection {
        self.section
    }
}

/// The standard node population of one corridor segment: one high-power
/// mast over the whole inter-site distance, `n` service repeaters at
/// evenly spread centres (each watching a `spacing`-wide section), and
/// the paper's donor-rule count of donor repeaters watching the whole
/// segment.
///
/// This mirrors the analytic model's accounting
/// ([`corridor_core::energy::average_power_per_km`]) node for node, so
/// the two backends agree on deterministic timetables.
///
/// # Examples
///
/// ```
/// use corridor_events::{segment_nodes, NodeKind};
/// use corridor_units::Meters;
///
/// let nodes = segment_nodes(10, Meters::new(2650.0), Meters::new(200.0));
/// assert_eq!(nodes.len(), 13); // 1 mast + 10 service + 2 donors
/// assert_eq!(nodes[0].kind(), NodeKind::HighPowerMast);
/// ```
///
/// # Panics
///
/// Panics if `isd` is not strictly positive.
pub fn segment_nodes(n: usize, isd: Meters, spacing: Meters) -> Vec<NodeSpec> {
    let inventory = SegmentInventory::for_nodes(n, isd);
    let mut nodes = Vec::with_capacity(1 + inventory.total_repeaters());
    nodes.push(NodeSpec::new(
        NodeKind::HighPowerMast,
        TrackSection::new(Meters::ZERO, isd),
    ));
    for i in 0..n {
        let center = isd * ((2 * i + 1) as f64 / (2 * n) as f64);
        nodes.push(NodeSpec::new(
            NodeKind::ServiceRepeater,
            TrackSection::around(center, spacing),
        ));
    }
    for _ in 0..inventory.donor_nodes() {
        nodes.push(NodeSpec::new(
            NodeKind::DonorRepeater,
            TrackSection::new(Meters::ZERO, isd),
        ));
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_population_follows_donor_rule() {
        let none = segment_nodes(0, Meters::new(500.0), Meters::new(200.0));
        assert_eq!(none.len(), 1); // conventional segment: mast only
        let one = segment_nodes(1, Meters::new(1250.0), Meters::new(200.0));
        assert_eq!(one.len(), 3); // mast + 1 service + 1 donor
        let ten = segment_nodes(10, Meters::new(2650.0), Meters::new(200.0));
        assert_eq!(ten.len(), 13); // mast + 10 service + 2 donors
        assert_eq!(
            ten.iter()
                .filter(|s| s.kind() == NodeKind::DonorRepeater)
                .count(),
            2
        );
    }

    #[test]
    fn service_sections_are_centered_and_sized() {
        let nodes = segment_nodes(1, Meters::new(1250.0), Meters::new(200.0));
        let service = nodes[1];
        assert_eq!(service.kind(), NodeKind::ServiceRepeater);
        // single node sits at the segment centre, like the analytic model
        assert_eq!(service.section().start(), Meters::new(525.0));
        assert_eq!(service.section().end(), Meters::new(725.0));

        let four = segment_nodes(4, Meters::new(2000.0), Meters::new(200.0));
        let centers: Vec<f64> = four[1..=4]
            .iter()
            .map(|s| (s.section().start().value() + s.section().end().value()) / 2.0)
            .collect();
        assert_eq!(centers, vec![250.0, 750.0, 1250.0, 1750.0]);
        for spec in &four[1..=4] {
            assert_eq!(spec.section().length(), Meters::new(200.0));
        }
    }

    #[test]
    fn donors_watch_the_whole_segment() {
        let nodes = segment_nodes(3, Meters::new(1600.0), Meters::new(200.0));
        for spec in nodes.iter().filter(|s| s.kind() == NodeKind::DonorRepeater) {
            assert_eq!(spec.section().start(), Meters::ZERO);
            assert_eq!(spec.section().end(), Meters::new(1600.0));
        }
    }

    #[test]
    fn kind_display() {
        assert_eq!(NodeKind::HighPowerMast.to_string(), "hp-mast");
        assert_eq!(NodeKind::ServiceRepeater.to_string(), "service");
        assert_eq!(NodeKind::DonorRepeater.to_string(), "donor");
    }
}
