//! Fixture: a reasoned waiver suppresses the unsafe-code rule.

// corridor-lint: allow(unsafe-code, reason = "single-threaded init-once flag audited in review")
pub static mut COUNTER: u64 = 0;
