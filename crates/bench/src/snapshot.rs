//! Machine-readable throughput snapshots (`BENCH_events.json`,
//! `BENCH_mc.json`, `BENCH_sweep.json`, `BENCH_network.json`).
//!
//! The `bench_snapshot` binary re-measures the four hot paths and
//! rewrites the snapshots at the repository root; they are committed so
//! the perf trajectory is tracked commit-over-commit the same way the
//! goldens under `docs/results/` track output bytes. The guard test in
//! `tests/bench_snapshots.rs` keeps the committed values above the
//! floors (PR 6 for the first three, PR 9 for the network day) and
//! (opt-in) re-measures against them.
//!
//! The rendered JSON is deterministic — no timestamps, fixed field
//! order, fixed float formatting — so regenerating on the same machine
//! with the same code produces an empty diff modulo measurement noise
//! in `value`/`speedup_vs_baseline`.

use std::time::Instant;

use corridor_core::traffic::Timetable;
use corridor_core::units::Meters;
use corridor_events::{segment_nodes, CorridorSimulator, WakePolicy};
use corridor_sim::{
    CorridorNetwork, McEngine, NetworkDayEngine, ReplicationPlan, ScenarioGrid, SearchSpace,
    SweepEngine,
};

/// Pre-overhaul (PR 5) events/s on the paper segment, the snapshot's
/// fixed comparison point.
pub const EVENTS_BASELINE: f64 = 8.0e6;
/// Pre-overhaul serial Monte-Carlo cell-days/s on the screening grid.
pub const MC_BASELINE: f64 = 700.0;
/// Pre-overhaul serial sweep cells/s (PV sizing on) on the screening grid.
pub const SWEEP_BASELINE: f64 = 110.0;
/// Serial network-day edge-days/s on the wye junction at the backend's
/// introduction (PR 9) — the fixed comparison point for the time-domain
/// network backend.
pub const NETWORK_BASELINE: f64 = 100.0;

/// Required multiple over [`EVENTS_BASELINE`] (the PR-6 target: ≥5×).
pub const EVENTS_REQUIRED_SPEEDUP: f64 = 5.0;
/// Required multiple over [`MC_BASELINE`] (the PR-6 target: ≥5×).
pub const MC_REQUIRED_SPEEDUP: f64 = 5.0;
/// Required multiple over [`SWEEP_BASELINE`] (the PR-6 target: ≥3×).
pub const SWEEP_REQUIRED_SPEEDUP: f64 = 3.0;
/// Required multiple over [`NETWORK_BASELINE`]: the backend lands with
/// PR 9, so the floor is the introduction figure itself (≥1×) — it only
/// guards against future regressions.
pub const NETWORK_REQUIRED_SPEEDUP: f64 = 1.0;

/// One committed throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Snapshot name; also the `BENCH_<name>.json` file stem.
    pub name: String,
    /// What `value` measures (e.g. `events_per_second`).
    pub metric: String,
    /// Measured throughput, higher is better.
    pub value: f64,
    /// The pre-overhaul throughput the measurement is compared against.
    pub baseline: f64,
    /// Core count of the machine that produced the measurement
    /// (context for the committed number; all three paths run serial).
    pub host_cores: usize,
}

impl Snapshot {
    /// `value / baseline` — the headline multiple the PR targets pin.
    pub fn speedup(&self) -> f64 {
        self.value / self.baseline
    }

    /// Renders the snapshot as deterministic pretty-printed JSON.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"name\": \"{}\",\n  \"metric\": \"{}\",\n  \"value\": {:.1},\n  \
             \"baseline\": {:.1},\n  \"speedup_vs_baseline\": {:.2},\n  \"host_cores\": {}\n}}\n",
            self.name,
            self.metric,
            self.value,
            self.baseline,
            self.speedup(),
            self.host_cores
        )
    }

    /// Parses a snapshot rendered by [`Snapshot::to_json`]. Returns
    /// `None` on any missing or malformed field — the guard test turns
    /// that into a hard failure with the offending file named.
    pub fn parse(json: &str) -> Option<Snapshot> {
        Some(Snapshot {
            name: json_str(json, "name")?,
            metric: json_str(json, "metric")?,
            value: json_num(json, "value")?,
            baseline: json_num(json, "baseline")?,
            host_cores: json_num(json, "host_cores")? as usize,
        })
    }
}

/// Extracts a string field from a flat JSON object (no escapes — the
/// snapshot fields are plain identifiers).
fn json_str(json: &str, key: &str) -> Option<String> {
    let rest = raw_field(json, key)?;
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts a numeric field from a flat JSON object.
fn json_num(json: &str, key: &str) -> Option<f64> {
    let rest = raw_field(json, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Slice starting right after `"key":` (whitespace skipped).
fn raw_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    Some(json[at..].trim_start())
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Measures raw event throughput: the paper's 10-node segment under the
/// paper wake policy, 200 deterministic timetable days, single thread.
pub fn measure_events() -> Snapshot {
    let params = crate::scenario();
    let nodes = segment_nodes(10, Meters::new(2650.0), params.lp_spacing());
    let passes = Timetable::paper_default().passes();
    let sim = CorridorSimulator::new().with_policy(WakePolicy::paper_default());

    let _ = sim.simulate(&nodes, &passes); // warm up
    const DAYS: usize = 200;
    let started = Instant::now();
    let mut events = 0usize;
    for _ in 0..DAYS {
        events += sim.simulate(&nodes, &passes).events_processed();
    }
    Snapshot {
        name: "events".into(),
        metric: "events_per_second".into(),
        value: events as f64 / started.elapsed().as_secs_f64().max(1e-9),
        baseline: EVENTS_BASELINE,
        host_cores: host_cores(),
    }
}

/// Measures serial Monte-Carlo throughput: the 200-cell screening grid
/// × 5 replications (1000 cell-days), one worker.
pub fn measure_mc() -> Snapshot {
    let grid = ScenarioGrid::screening_200();
    let plan = ReplicationPlan::new(5);
    let engine = McEngine::new().workers(1);

    let warmup = ScenarioGrid::new().trains_per_hour(vec![4.0]);
    let _ = engine.run_serial(&warmup, &plan);
    let started = Instant::now();
    let report = engine
        .run_serial(&grid, &plan)
        .expect("screening grid is valid");
    Snapshot {
        name: "mc".into(),
        metric: "cell_days_per_second".into(),
        value: report.cell_days() as f64 / started.elapsed().as_secs_f64().max(1e-9),
        baseline: MC_BASELINE,
        host_cores: host_cores(),
    }
}

/// Measures serial sweep throughput with PV sizing on: the 200-cell
/// screening grid, one worker.
pub fn measure_sweep() -> Snapshot {
    let grid = ScenarioGrid::screening_200();
    let engine = SweepEngine::new().workers(1).pv_sizing(true);

    let _ = engine.run_serial(&grid);
    let started = Instant::now();
    let report = engine.run_serial(&grid).expect("screening grid is valid");
    Snapshot {
        name: "sweep".into(),
        metric: "cells_per_second".into(),
        value: report.results().len() as f64 / started.elapsed().as_secs_f64().max(1e-9),
        baseline: SWEEP_BASELINE,
        host_cores: host_cores(),
    }
}

/// Measures serial network-day throughput: the wye3 junction through
/// the time-domain backend (routed itineraries, shared days), 40
/// replications per edge, one worker.
pub fn measure_network() -> Snapshot {
    let net = CorridorNetwork::by_name("wye3").expect("committed topology");
    let space = SearchSpace::new().sample_step(Meters::new(10.0));
    let engine = NetworkDayEngine::new().workers(1).reps(40);

    let _ = engine.reps(1).run(&net, &space); // warm the coverage search
    let started = Instant::now();
    let report = engine.run(&net, &space).expect("wye3 is valid");
    Snapshot {
        name: "network".into(),
        metric: "edge_days_per_second".into(),
        value: (report.per_edge().len() * report.reps()) as f64
            / started.elapsed().as_secs_f64().max(1e-9),
        baseline: NETWORK_BASELINE,
        host_cores: host_cores(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let snap = Snapshot {
            name: "events".into(),
            metric: "events_per_second".into(),
            value: 70_370_000.0,
            baseline: EVENTS_BASELINE,
            host_cores: 1,
        };
        let parsed = Snapshot::parse(&snap.to_json()).expect("rendered JSON parses");
        assert_eq!(parsed, snap);
        assert!((parsed.speedup() - 8.80).abs() < 0.005);
    }

    #[test]
    fn parse_rejects_missing_fields() {
        assert_eq!(Snapshot::parse("{}"), None);
        assert_eq!(Snapshot::parse("{\"name\": \"x\"}"), None);
    }
}
