//! Fixture: a lossy float-to-int cast inside a sort key.

pub fn rank(xs: &mut [f64]) {
    xs.sort_by_key(|x| (x * 1000.0) as i64);
}
