//! Regenerates the paper's Table II: EARTH power-model parameters for the
//! RRH and the repeater node.

use corridor_core::experiments;
use corridor_core::report::TextTable;

fn main() {
    println!("Table II — power model parameters\n");
    let mut table = TextTable::new(vec![
        "node type".into(),
        "Pmax [W]".into(),
        "P0 [W]".into(),
        "dP".into(),
        "Psleep [W]".into(),
        "full load [W]".into(),
    ]);
    for row in experiments::table2() {
        table.add_row(vec![
            row.node_type.to_string(),
            format!("{:.0}", row.model.p_max().value()),
            format!("{:.2}", row.model.p0().value()),
            format!("{:.1}", row.model.delta_p()),
            format!("{:.2}", row.model.p_sleep().value()),
            format!("{:.2}", row.model.full_load_power().value()),
        ]);
    }
    println!("{}", table.render());
    println!("a mast carries two RRHs: 560 W full load, 336 W idle, 224 W sleep");
}
