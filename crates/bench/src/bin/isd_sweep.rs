//! Regenerates the maximum-ISD list of Section V: for 0–10 repeater
//! nodes, the largest inter-site distance that still delivers peak 5G NR
//! throughput everywhere (SNR >= 29 dB).

use corridor_bench::scenario;
use corridor_core::experiments;
use corridor_core::report::TextTable;
use corridor_core::units::Meters;

fn main() {
    let sweep = experiments::isd_sweep(&scenario(), Meters::new(5.0));
    println!("maximum ISD per repeater count (50 m grid)\n");
    let mut table = TextTable::new(vec![
        "nodes".into(),
        "computed [m]".into(),
        "paper [m]".into(),
        "delta".into(),
    ]);
    for n in 0..=10usize {
        let computed = sweep.computed.isd_for(n);
        let paper = sweep.paper.isd_for(n);
        table.add_row(vec![
            n.to_string(),
            computed.map_or("-".into(), |m| format!("{:.0}", m.value())),
            paper.map_or("-".into(), |m| format!("{:.0}", m.value())),
            match (computed, paper) {
                (Some(c), Some(p)) => format!("{:+.0}", c.value() - p.value()),
                _ => "-".into(),
            },
        ]);
    }
    println!("{}", table.render());
    println!("paper sequence: 1250 1450 1600 1800 1950 2100 2250 2400 2500 2650");
    println!("(n = 0 is the model's own bound; the paper's 500 m reference is the");
    println!("real-world deployment value, not a model output)");
}
