//! Lossless comment/string masking for rule scanning.
//!
//! The rules operate on a *masked* copy of each source file: every
//! comment, string literal, character literal and raw string is
//! replaced by spaces (newlines preserved), so a forbidden token inside
//! a doc comment or an error message can never produce a false
//! positive. The masking keeps the line structure of the original file
//! intact — a byte at line `n` of the masked text sits at line `n` of
//! the source — which is what lets diagnostics carry exact `file:line`
//! positions without a real parser.
//!
//! Comment *text* is not discarded: it is collected per line, because
//! waiver directives live in comments and are parsed from this
//! side-channel (never from string literals, so the engine's own
//! sources — which name the directive marker in strings — cannot waive
//! anything by accident).

/// One comment's text, attached to the line its first character sits on.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based source line of the comment's first character.
    pub line: usize,
    /// The comment text including its `//` / `/*` framing.
    pub text: String,
}

/// The result of masking one source file.
#[derive(Debug, Clone)]
pub struct Sanitized {
    /// The source with comments and literals blanked to spaces
    /// (newlines kept, so line numbers match the original).
    pub masked: String,
    /// Every comment in source order.
    pub comments: Vec<Comment>,
}

/// Masks `source`, blanking comments and string/char literals.
///
/// Handles nested block comments, escaped quotes, raw strings with any
/// number of `#` markers (`r"…"`, `r##"…"##`, `br#"…"#`), byte strings
/// and the lifetime-vs-char-literal ambiguity (`'a` versus `'a'`).
pub fn sanitize(source: &str) -> Sanitized {
    let bytes = source.as_bytes();
    let mut masked = String::with_capacity(source.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes one masked byte, preserving newlines for line accounting.
    fn blank(masked: &mut String, b: u8) {
        masked.push(if b == b'\n' { '\n' } else { ' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                // Line comment (incl. `///` and `//!`): capture text,
                // blank it in the masked copy.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                comments.push(Comment { line, text });
                for _ in start..i {
                    masked.push(' ');
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comment, possibly nested.
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let text = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                comments.push(Comment {
                    line: start_line,
                    text,
                });
                for &c in &bytes[start..i] {
                    blank(&mut masked, c);
                }
            }
            b'"' => {
                i = mask_string(bytes, i, &mut masked, &mut line);
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                i = mask_raw_or_byte(bytes, i, &mut masked, &mut line);
            }
            b'\'' => {
                i = mask_char_or_lifetime(bytes, i, &mut masked, &mut line);
            }
            _ => {
                if b == b'\n' {
                    line += 1;
                }
                masked.push(b as char);
                i += 1;
            }
        }
    }

    Sanitized { masked, comments }
}

/// True when position `i` (at `r` or `b`) starts a raw string, byte
/// string or raw byte string — and is not a plain identifier such as a
/// raw identifier `r#loop` or a name ending in `r`.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // A string prefix only counts when not glued to a preceding
    // identifier character (`attr"x"` is not `r"x"`).
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        // skip any number of #
        let mut k = j;
        while k < bytes.len() && bytes[k] == b'#' {
            k += 1;
        }
        // `r#ident` (raw identifier) has ident chars after `#`, not a quote
        return k < bytes.len() && bytes[k] == b'"';
    }
    // plain byte string b"..."
    j < bytes.len() && bytes[j] == b'"'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Masks an escaped (non-raw) string literal starting at the opening
/// quote; returns the index just past the closing quote.
fn mask_string(bytes: &[u8], mut i: usize, masked: &mut String, line: &mut usize) -> usize {
    masked.push(' ');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                if bytes[i + 1] == b'\n' {
                    *line += 1;
                }
                masked.push(' ');
                masked.push(if bytes[i + 1] == b'\n' { '\n' } else { ' ' });
                i += 2;
            }
            b'"' => {
                masked.push(' ');
                return i + 1;
            }
            b'\n' => {
                *line += 1;
                masked.push('\n');
                i += 1;
            }
            _ => {
                masked.push(' ');
                i += 1;
            }
        }
    }
    i
}

/// Masks `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` starting at the prefix;
/// returns the index just past the closing delimiter.
fn mask_raw_or_byte(bytes: &[u8], mut i: usize, masked: &mut String, line: &mut usize) -> usize {
    let mut raw = false;
    if bytes[i] == b'b' {
        masked.push(' ');
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'r' {
        raw = true;
        masked.push(' ');
        i += 1;
    }
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        masked.push(' ');
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return i;
    }
    if !raw {
        // plain byte string: escape rules of a normal string
        return mask_string(bytes, i, masked, line);
    }
    masked.push(' ');
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes.len() - i > hashes
            && bytes[i + 1..=i + hashes].iter().all(|&c| c == b'#')
        {
            for _ in 0..=hashes {
                masked.push(' ');
            }
            return i + 1 + hashes;
        }
        if bytes[i] == b'"' && hashes == 0 {
            masked.push(' ');
            return i + 1;
        }
        if bytes[i] == b'\n' {
            *line += 1;
            masked.push('\n');
        } else {
            masked.push(' ');
        }
        i += 1;
    }
    i
}

/// Masks a character literal, or passes a lifetime through untouched;
/// returns the index just past whatever was consumed.
///
/// Disambiguation: after the opening quote, a char literal holds either
/// a backslash escape or exactly one UTF-8 scalar followed immediately
/// by a closing quote. Anything else (`'a>`, `'outer:`, `&'a str`) is a
/// lifetime or loop label and is kept verbatim.
fn mask_char_or_lifetime(bytes: &[u8], i: usize, masked: &mut String, line: &mut usize) -> usize {
    let n = bytes.len();
    if i + 1 < n && bytes[i + 1] == b'\\' {
        // `'\n'`, `'\''`, `'\x41'`, `'\u{…}'`: skip the backslash and
        // the escaped byte, then scan to the closing quote.
        let mut j = i + 3;
        while j < n && bytes[j] != b'\'' {
            if bytes[j] == b'\n' {
                *line += 1;
            }
            j += 1;
        }
        for _ in i..=j.min(n.saturating_sub(1)) {
            masked.push(' ');
        }
        return (j + 1).min(n);
    }
    if i + 1 < n {
        let width = utf8_width(bytes[i + 1]);
        let close = i + 1 + width;
        if close < n && bytes[close] == b'\'' {
            for _ in i..=close {
                masked.push(' ');
            }
            return close + 1;
        }
    }
    // Lifetime (or stray quote): keep the quote so `'static` stays
    // scannable as ordinary code.
    masked.push('\'');
    i + 1
}

/// Byte width of a UTF-8 scalar from its leading byte.
fn utf8_width(lead: u8) -> usize {
    if lead < 0x80 {
        1
    } else if lead < 0xE0 {
        2
    } else if lead < 0xF0 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_doc_comments() {
        let s = sanitize("let x = 1; // partial_cmp here\n/// docs unwrap()\nlet y = 2;\n");
        assert!(!s.masked.contains("partial_cmp"));
        assert!(!s.masked.contains("unwrap"));
        assert!(s.masked.contains("let x = 1;"));
        assert!(s.masked.contains("let y = 2;"));
        assert_eq!(s.comments.len(), 2);
        assert_eq!(s.comments[0].line, 1);
        assert_eq!(s.comments[1].line, 2);
    }

    #[test]
    fn masks_nested_block_comments() {
        let s = sanitize("a /* outer /* inner unwrap() */ still */ b\n");
        assert!(!s.masked.contains("unwrap"));
        assert!(s.masked.starts_with('a'));
        assert!(s.masked.trim_end().ends_with('b'));
    }

    #[test]
    fn masks_strings_and_escapes() {
        let s = sanitize(r#"let m = "panic! \" unwrap()"; let k = 1;"#);
        assert!(!s.masked.contains("panic"));
        assert!(s.masked.contains("let k = 1;"));
    }

    #[test]
    fn masks_raw_strings_with_hashes() {
        let s = sanitize("let m = r#\"unwrap() \"quoted\" inside\"#; let k = 2;");
        assert!(!s.masked.contains("unwrap"));
        assert!(s.masked.contains("let k = 2;"));
    }

    #[test]
    fn keeps_lifetimes_but_masks_char_literals() {
        let s = sanitize("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(s.masked.contains("<'a>"));
        assert!(s.masked.contains("&'a str"));
        assert!(!s.masked.contains("'x'"));
    }

    #[test]
    fn adjacent_lifetimes_are_not_a_char_literal() {
        let s = sanitize("fn f<'a, 'b>(x: &'a str, y: &'b str) {}\n");
        assert!(s.masked.contains("<'a, 'b>"));
        assert!(s.masked.contains("&'b str"));
    }

    #[test]
    fn escaped_quote_char_literal_closes_correctly() {
        let s = sanitize(r"let q = '\''; let t = 4;");
        assert!(s.masked.contains("let t = 4;"));
        assert!(!s.masked.contains("\\'"));
    }

    #[test]
    fn masks_escaped_char_literal() {
        let s = sanitize(r"let c = '\n'; let d = 3;");
        assert!(!s.masked.contains("\\n"));
        assert!(s.masked.contains("let d = 3;"));
    }

    #[test]
    fn preserves_line_numbers_across_multiline_constructs() {
        let src = "a\n/* two\nlines */\nlet s = \"x\ny\";\nend\n";
        let s = sanitize(src);
        assert_eq!(
            s.masked.matches('\n').count(),
            src.matches('\n').count(),
            "newline count must survive masking"
        );
        let lines: Vec<&str> = s.masked.lines().collect();
        assert_eq!(lines[5].trim(), "end");
    }

    #[test]
    fn waiver_text_in_string_literal_is_not_a_comment() {
        let s = sanitize("let marker = \"corridor-lint: allow(no-panic)\";\n");
        assert!(s.comments.is_empty());
    }
}
