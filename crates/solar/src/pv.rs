//! Photovoltaic module and array model.

use core::fmt;

use corridor_units::Watts;

/// One PV module, rated at standard test conditions (1000 W/m², 25 °C).
///
/// The paper considers standard 0.6 m × 1.4 m modules of 180 Wp mounted
/// vertically on catenary masts ([`PvModule::standard_180wp`]).
///
/// # Examples
///
/// ```
/// use corridor_solar::PvModule;
/// let m = PvModule::standard_180wp();
/// // full irradiance at 25 °C cell temperature -> rated power
/// assert!((m.dc_power_w(1000.0, 25.0 - 31.25) - 180.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PvModule {
    peak: Watts,
    temp_coeff_per_k: f64,
    noct_c: f64,
}

impl PvModule {
    /// The paper's standard module: 180 Wp, −0.4 %/K, NOCT 45 °C.
    pub fn standard_180wp() -> Self {
        PvModule::with_peak(Watts::new(180.0))
    }

    /// A module with the given peak power and standard thermal parameters.
    ///
    /// # Panics
    ///
    /// Panics if `peak` is not strictly positive.
    pub fn with_peak(peak: Watts) -> Self {
        assert!(peak.value() > 0.0, "peak power must be positive");
        PvModule {
            peak,
            temp_coeff_per_k: -0.004,
            noct_c: 45.0,
        }
    }

    /// Overrides the power temperature coefficient (per kelvin, negative).
    #[must_use]
    pub fn with_temp_coefficient(mut self, coeff_per_k: f64) -> Self {
        self.temp_coeff_per_k = coeff_per_k;
        self
    }

    /// Rated (STC) power.
    pub fn peak(&self) -> Watts {
        self.peak
    }

    /// Cell temperature (°C) under `poa_w_m2` at ambient `ambient_c`,
    /// using the NOCT model.
    pub fn cell_temperature_c(&self, poa_w_m2: f64, ambient_c: f64) -> f64 {
        ambient_c + (self.noct_c - 20.0) / 800.0 * poa_w_m2
    }

    /// DC output power (watts) under `poa_w_m2` at ambient `ambient_c`.
    pub fn dc_power_w(&self, poa_w_m2: f64, ambient_c: f64) -> f64 {
        if poa_w_m2 <= 0.0 {
            return 0.0;
        }
        let t_cell = self.cell_temperature_c(poa_w_m2, ambient_c);
        let derate = 1.0 + self.temp_coeff_per_k * (t_cell - 25.0);
        (self.peak.value() * poa_w_m2 / 1000.0 * derate).max(0.0)
    }
}

impl Default for PvModule {
    /// Returns [`PvModule::standard_180wp`].
    fn default() -> Self {
        PvModule::standard_180wp()
    }
}

/// A string of identical modules plus balance-of-system losses.
///
/// # Examples
///
/// ```
/// use corridor_solar::PvArray;
/// // the paper's standard repeater system: three 180 Wp modules = 540 Wp
/// let array = PvArray::standard_modules(3);
/// assert_eq!(array.peak().value(), 540.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PvArray {
    module: PvModule,
    count: u32,
    system_efficiency: f64,
}

impl PvArray {
    /// Default balance-of-system efficiency (wiring, charge controller,
    /// soiling): 86 %, matching PVGIS' default 14 % system loss.
    pub const DEFAULT_SYSTEM_EFFICIENCY: f64 = 0.86;

    /// `count` standard 180 Wp modules.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn standard_modules(count: u32) -> Self {
        PvArray::new(PvModule::standard_180wp(), count)
    }

    /// An array of `count` identical `module`s.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(module: PvModule, count: u32) -> Self {
        assert!(count > 0, "array needs at least one module");
        PvArray {
            module,
            count,
            system_efficiency: Self::DEFAULT_SYSTEM_EFFICIENCY,
        }
    }

    /// Overrides the balance-of-system efficiency.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is outside `(0, 1]`.
    #[must_use]
    pub fn with_system_efficiency(mut self, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        self.system_efficiency = efficiency;
        self
    }

    /// The module type.
    pub fn module(&self) -> &PvModule {
        &self.module
    }

    /// Number of modules.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Installed peak power.
    pub fn peak(&self) -> Watts {
        self.module.peak() * f64::from(self.count)
    }

    /// AC-side output power (watts) under `poa_w_m2` at ambient
    /// `ambient_c`, including system losses.
    pub fn output_power_w(&self, poa_w_m2: f64, ambient_c: f64) -> f64 {
        self.module.dc_power_w(poa_w_m2, ambient_c) * f64::from(self.count) * self.system_efficiency
    }
}

impl fmt::Display for PvArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x {} module(s), {} peak",
            self.count,
            self.module.peak(),
            self.peak()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rated_power_at_stc() {
        let m = PvModule::standard_180wp();
        // ambient such that cell temp is exactly 25 °C
        let ambient = 25.0 - (45.0 - 20.0) / 800.0 * 1000.0;
        assert!((m.dc_power_w(1000.0, ambient) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn zero_in_darkness() {
        let m = PvModule::standard_180wp();
        assert_eq!(m.dc_power_w(0.0, 20.0), 0.0);
        assert_eq!(m.dc_power_w(-5.0, 20.0), 0.0);
    }

    #[test]
    fn hot_cells_produce_less() {
        let m = PvModule::standard_180wp();
        let cold = m.dc_power_w(800.0, 0.0);
        let hot = m.dc_power_w(800.0, 35.0);
        assert!(cold > hot);
        // 35 K ambient difference -> 14 % power difference at -0.4 %/K
        assert!((cold / hot - 1.0 - 0.004 * 35.0).abs() < 0.05);
    }

    #[test]
    fn cell_temperature_noct_model() {
        let m = PvModule::standard_180wp();
        // at NOCT conditions (800 W/m², 20 °C) the cell sits at NOCT
        assert!((m.cell_temperature_c(800.0, 20.0) - 45.0).abs() < 1e-9);
    }

    #[test]
    fn array_scales_linearly() {
        let one = PvArray::standard_modules(1);
        let three = PvArray::standard_modules(3);
        assert_eq!(three.peak(), Watts::new(540.0));
        let p1 = one.output_power_w(600.0, 10.0);
        let p3 = three.output_power_w(600.0, 10.0);
        assert!((p3 - 3.0 * p1).abs() < 1e-9);
    }

    #[test]
    fn system_losses_applied() {
        let lossless = PvArray::standard_modules(1).with_system_efficiency(1.0);
        let lossy = PvArray::standard_modules(1);
        let ratio = lossy.output_power_w(500.0, 10.0) / lossless.output_power_w(500.0, 10.0);
        assert!((ratio - 0.86).abs() < 1e-9);
    }

    #[test]
    fn paper_sizes() {
        // 540 Wp for Madrid/Lyon/Vienna; 600 Wp ("slightly larger") Berlin
        assert_eq!(PvArray::standard_modules(3).peak(), Watts::new(540.0));
        let berlin = PvArray::new(PvModule::with_peak(Watts::new(200.0)), 3);
        assert_eq!(berlin.peak(), Watts::new(600.0));
    }

    #[test]
    fn display() {
        let a = PvArray::standard_modules(3);
        assert_eq!(a.to_string(), "3x 180.00 W module(s), 540.00 W peak");
    }

    #[test]
    #[should_panic(expected = "at least one module")]
    fn empty_array_rejected() {
        let _ = PvArray::standard_modules(0);
    }
}
