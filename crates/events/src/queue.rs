//! The event queue: a deterministic min-heap of simulation events.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use corridor_units::Seconds;

/// What fires (or is scheduled to fire) at a node.
///
/// At equal timestamps events process in a fixed priority order —
/// barrier trips before wake completions before train entries before
/// train exits before drain expiries — so zero-latency policies (an
/// instant wake at the very second a train enters) resolve
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The photoelectric barrier up-track of the node tripped.
    BarrierTrip,
    /// A wake transition completed (tagged with the wake sequence number
    /// that scheduled it, so stale completions are ignored).
    WakeComplete(u64),
    /// A train head entered the node's coverage section.
    TrainEnter,
    /// A train tail cleared the node's coverage section.
    TrainExit,
    /// The guard interval after the last train expired (tagged with the
    /// drain sequence number that scheduled it).
    DrainExpire(u64),
}

impl EventKind {
    /// Processing priority at equal timestamps (lower first).
    fn rank(self) -> u8 {
        match self {
            EventKind::BarrierTrip => 0,
            EventKind::WakeComplete(_) => 1,
            EventKind::TrainEnter => 2,
            EventKind::TrainExit => 3,
            EventKind::DrainExpire(_) => 4,
        }
    }
}

/// One scheduled simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// When the event fires (may lie outside the simulation horizon; the
    /// energy integrator clamps).
    pub time: Seconds,
    /// Index of the node it concerns.
    pub node: usize,
    /// What fires.
    pub kind: EventKind,
}

/// A heap entry carrying an insertion sequence as the final tiebreak, so
/// the pop order is a total order independent of heap internals.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    event: Event,
    seq: u64,
}

impl HeapEntry {
    /// Min-first comparison key ordering: time, kind priority, node,
    /// insertion order.
    fn key_cmp(&self, other: &Self) -> Ordering {
        self.event
            .time
            .partial_cmp(&other.event.time)
            .expect("event times are never NaN")
            .then_with(|| self.event.kind.rank().cmp(&other.event.kind.rank()))
            .then_with(|| self.event.node.cmp(&other.event.node))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key_cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want the earliest event
        self.key_cmp(other).reverse()
    }
}

/// A deterministic min-queue of [`Event`]s.
///
/// # Examples
///
/// ```
/// use corridor_events::{Event, EventKind, EventQueue};
/// use corridor_units::Seconds;
///
/// let mut q = EventQueue::new();
/// q.push(Event { time: Seconds::new(5.0), node: 0, kind: EventKind::TrainExit });
/// q.push(Event { time: Seconds::new(5.0), node: 0, kind: EventKind::TrainEnter });
/// q.push(Event { time: Seconds::new(1.0), node: 1, kind: EventKind::BarrierTrip });
/// assert_eq!(q.pop().unwrap().time, Seconds::new(1.0));
/// // at equal times the entry processes before the exit
/// assert_eq!(q.pop().unwrap().kind, EventKind::TrainEnter);
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { event, seq });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|entry| entry.event)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, node: usize, kind: EventKind) -> Event {
        Event {
            time: Seconds::new(time),
            node,
            kind,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for t in [9.0, 3.0, 7.0, 1.0, 5.0] {
            q.push(ev(t, 0, EventKind::TrainEnter));
        }
        let mut last = f64::NEG_INFINITY;
        while let Some(event) = q.pop() {
            assert!(event.time.value() >= last);
            last = event.time.value();
        }
    }

    #[test]
    fn equal_times_follow_kind_priority() {
        let mut q = EventQueue::new();
        q.push(ev(10.0, 0, EventKind::DrainExpire(1)));
        q.push(ev(10.0, 0, EventKind::TrainExit));
        q.push(ev(10.0, 0, EventKind::TrainEnter));
        q.push(ev(10.0, 0, EventKind::WakeComplete(1)));
        q.push(ev(10.0, 0, EventKind::BarrierTrip));
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::BarrierTrip,
                EventKind::WakeComplete(1),
                EventKind::TrainEnter,
                EventKind::TrainExit,
                EventKind::DrainExpire(1),
            ]
        );
    }

    #[test]
    fn equal_time_and_kind_order_by_node_then_insertion() {
        let mut q = EventQueue::new();
        q.push(ev(4.0, 2, EventKind::TrainEnter));
        q.push(ev(4.0, 1, EventKind::TrainEnter));
        q.push(ev(4.0, 1, EventKind::TrainEnter));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|e| e.node).collect();
        assert_eq!(order, vec![1, 1, 2]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(ev(0.0, 0, EventKind::BarrierTrip));
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
