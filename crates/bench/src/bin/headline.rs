//! Prints the paper's Section V headline numbers next to the model's.
//!
//! The rendering lives in [`corridor_bench::render`] so the golden-file
//! test can assert it against `docs/results/`.

fn main() {
    print!("{}", corridor_bench::render::headline());
}
