//! Fixture: a malformed directive is itself a violation.

// corridor-lint: allowing everything forever
pub fn nothing() {}
