//! Train-wagon penetration loss.

use core::fmt;

use corridor_units::{Db, Hertz};

/// Window treatment of a train wagon.
///
/// Modern wagons act as Faraday cages: metal-coated (low-emissivity) windows
/// attenuate sub-6 GHz signals by tens of dB, which is the core motivation
/// for dedicated railway corridors. Frequency-selective surfaces (FSS) laser
/// structure the coating to let mobile bands through while keeping the
/// thermal insulation.
///
/// Loss values follow the measurement literature cited by the paper
/// (refs. \[8\], \[9\], \[11\]): plain windows ≈ 5 dB, coated ≈ 25–30 dB,
/// FSS-treated ≈ 10 dB at 3.5 GHz with a mild frequency slope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WindowTreatment {
    /// Plain uncoated glass (older rolling stock).
    Uncoated,
    /// Metal-coated low-emissivity windows (Faraday-cage behaviour).
    CoatedLowE,
    /// Laser-structured frequency-selective-surface windows.
    FssTreated,
}

impl WindowTreatment {
    /// All treatments, for sweeps.
    pub const ALL: [WindowTreatment; 3] = [
        WindowTreatment::Uncoated,
        WindowTreatment::CoatedLowE,
        WindowTreatment::FssTreated,
    ];
}

impl fmt::Display for WindowTreatment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WindowTreatment::Uncoated => "uncoated",
            WindowTreatment::CoatedLowE => "coated Low-E",
            WindowTreatment::FssTreated => "FSS-treated",
        };
        f.write_str(name)
    }
}

/// Frequency-dependent penetration loss into a train wagon.
///
/// The paper folds penetration into the calibration constants of eq. (1);
/// this type makes the effect explicit so that scenarios with different
/// rolling stock can be compared (e.g. to reproduce the argument that
/// conventional macro coverage fails for coated wagons).
///
/// # Examples
///
/// ```
/// use corridor_propagation::{PenetrationLoss, WindowTreatment};
/// use corridor_units::Hertz;
///
/// let coated = PenetrationLoss::new(WindowTreatment::CoatedLowE);
/// let fss = PenetrationLoss::new(WindowTreatment::FssTreated);
/// let f = Hertz::from_ghz(3.5);
/// assert!(coated.loss_at(f).value() > fss.loss_at(f).value() + 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PenetrationLoss {
    treatment: WindowTreatment,
}

impl PenetrationLoss {
    /// Reference frequency for the base loss values.
    const REF_GHZ: f64 = 3.5;

    /// Creates the loss model for the given window treatment.
    pub fn new(treatment: WindowTreatment) -> Self {
        PenetrationLoss { treatment }
    }

    /// The wagon's window treatment.
    pub fn treatment(&self) -> WindowTreatment {
        self.treatment
    }

    /// Base loss at the 3.5 GHz reference frequency.
    pub fn base_loss(&self) -> Db {
        match self.treatment {
            WindowTreatment::Uncoated => Db::new(5.0),
            WindowTreatment::CoatedLowE => Db::new(28.0),
            WindowTreatment::FssTreated => Db::new(10.0),
        }
    }

    /// Loss at `frequency`, applying a gentle `+2 dB per frequency octave`
    /// slope observed in the measurement literature.
    pub fn loss_at(&self, frequency: Hertz) -> Db {
        let octaves = (frequency.gigahertz() / Self::REF_GHZ).log2();
        let slope = Db::new(2.0 * octaves);
        let total = self.base_loss() + slope;
        // physical floor: penetration loss cannot be negative
        Db::new(total.value().max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_treatments() {
        let f = Hertz::from_ghz(3.5);
        let unc = PenetrationLoss::new(WindowTreatment::Uncoated).loss_at(f);
        let fss = PenetrationLoss::new(WindowTreatment::FssTreated).loss_at(f);
        let coated = PenetrationLoss::new(WindowTreatment::CoatedLowE).loss_at(f);
        assert!(unc < fss && fss < coated);
    }

    #[test]
    fn base_loss_at_reference() {
        let m = PenetrationLoss::new(WindowTreatment::CoatedLowE);
        assert_eq!(m.loss_at(Hertz::from_ghz(3.5)), m.base_loss());
    }

    #[test]
    fn loss_increases_with_frequency() {
        let m = PenetrationLoss::new(WindowTreatment::FssTreated);
        assert!(m.loss_at(Hertz::from_ghz(7.0)) > m.loss_at(Hertz::from_ghz(3.5)));
        // one octave up: +2 dB
        let delta = m.loss_at(Hertz::from_ghz(7.0)) - m.loss_at(Hertz::from_ghz(3.5));
        assert!((delta.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn loss_never_negative() {
        let m = PenetrationLoss::new(WindowTreatment::Uncoated);
        assert!(m.loss_at(Hertz::from_mhz(100.0)).value() >= 0.0);
    }

    #[test]
    fn all_and_display() {
        assert_eq!(WindowTreatment::ALL.len(), 3);
        assert_eq!(WindowTreatment::CoatedLowE.to_string(), "coated Low-E");
        assert_eq!(WindowTreatment::Uncoated.to_string(), "uncoated");
        assert_eq!(WindowTreatment::FssTreated.to_string(), "FSS-treated");
    }

    #[test]
    fn accessor() {
        let m = PenetrationLoss::new(WindowTreatment::FssTreated);
        assert_eq!(m.treatment(), WindowTreatment::FssTreated);
    }
}
