//! Fixture: simulated time flows in as data, no ambient clock.

pub fn stamp(simulated_seconds: f64) -> f64 {
    simulated_seconds
}
