//! Regenerates the paper's Table I: low-power repeater node power
//! consumption by component.
//!
//! The rendering lives in [`corridor_bench::render`] so the golden-file
//! test can assert it against `docs/results/`.

fn main() {
    print!("{}", corridor_bench::render::table1());
}
