//! Cached per-seed weather environments.
//!
//! A sizing search simulates the *same* weather year through many
//! candidate PV/battery configurations, and a sweep repeats that search
//! for every grid cell sharing a location. The expensive part of a
//! simulated year — the seeded daily clearness draw, the clear-sky
//! integration and 8760 plane-of-array transpositions — depends only on
//! the site, the mounting and the weather parameters, never on the
//! candidate hardware. This module computes that environment once per
//! `(site, mounting, weather, seed)` key and shares it process-wide, so
//! every candidate year after the first is just battery stepping.
//!
//! The cached arrays are produced by exactly the arithmetic the direct
//! simulation used to run inline, in the same order, so consuming the
//! cache is bit-identical to recomputing (pinned by the tests below).

// Order-safety audit (hash-order): the process-wide year cache below is
// only ever `get`/`insert`-probed by exact key; no iteration, so hash
// order cannot perturb battery stepping or any downstream report.
// corridor-lint: allow(hash-order, reason = "year cache is get/insert by key only, never iterated; order cannot escape")
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::{ClearSky, Location, OffGridSystem, SolarGeometry, Transposition, WeatherGenerator};

/// One precomputed weather year at a site and mounting: every
/// environmental input of [`OffGridSystem::simulate_year`] that does not
/// depend on the candidate PV array, battery or load.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EnvironmentYear {
    /// Ambient temperature per day of year (°C), January 1st first.
    pub ambient: Vec<f64>,
    /// Plane-of-array irradiance (W/m²) per hour of year, day-major:
    /// `poa[day * 24 + hour]` for `day` in `0..365`, `hour` in `0..24`.
    pub poa: Vec<f64>,
}

/// The full set of inputs the environment arrays depend on, compared by
/// bits so distinct floats never alias (and NaN parameters simply hash
/// to their payload instead of poisoning lookups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct EnvKey {
    name: &'static str,
    seed: u64,
    bits: [u64; 31],
}

impl EnvKey {
    fn new(
        location: &Location,
        transposition: &Transposition,
        variability: f64,
        persistence: f64,
        seed: u64,
    ) -> Self {
        let mut bits = [0u64; 31];
        let mut at = 0;
        let mut push = |value: f64| {
            bits[at] = value.to_bits();
            at += 1;
        };
        push(location.latitude_deg());
        for &ghi in location.monthly_ghi_kwh_m2_day() {
            push(ghi);
        }
        for &temp in location.monthly_temp_c() {
            push(temp);
        }
        push(location.overcast_persistence());
        push(variability);
        push(persistence);
        push(transposition.tilt_deg());
        push(transposition.plane_azimuth_deg());
        push(transposition.ground_albedo());
        EnvKey {
            name: location.name(),
            seed,
            bits,
        }
    }
}

/// One slot per key, so a long environment computation never holds the
/// map lock: lookups of *other* keys proceed while the first caller of
/// this key fills the `OnceLock`.
type Slot = Arc<OnceLock<Arc<EnvironmentYear>>>;

fn cache() -> &'static Mutex<HashMap<EnvKey, Slot>> {
    static CACHE: OnceLock<Mutex<HashMap<EnvKey, Slot>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the shared environment year for the given inputs, computing
/// it on first use.
pub(crate) fn cached_year(
    location: &Location,
    transposition: &Transposition,
    variability: f64,
    persistence: f64,
    seed: u64,
) -> Arc<EnvironmentYear> {
    let key = EnvKey::new(location, transposition, variability, persistence, seed);
    let slot = {
        let mut map = cache().lock().unwrap_or_else(PoisonError::into_inner);
        map.entry(key).or_default().clone()
    };
    slot.get_or_init(|| {
        Arc::new(compute_year(
            location,
            transposition,
            variability,
            persistence,
            seed,
        ))
    })
    .clone()
}

/// The environment computation, replicating the exact operation order
/// the year simulation used to run inline — same clear-sky floor, same
/// clearness clamp, same half-hour solar time — so cached and direct
/// values are bit-identical.
fn compute_year(
    location: &Location,
    transposition: &Transposition,
    variability: f64,
    persistence: f64,
    seed: u64,
) -> EnvironmentYear {
    let clear_sky = ClearSky::new(SolarGeometry::at_latitude(location.latitude_deg()));
    let mut weather = WeatherGenerator::new(location.clone(), seed)
        .with_variability(variability)
        .with_persistence(persistence);
    let multipliers = weather.daily_multipliers_for_year();

    let mut ambient = vec![0.0; 365];
    let mut poa = vec![0.0; 365 * 24];
    for doy in 1..=365u32 {
        let day = (doy - 1) as usize;
        let clear_daily = clear_sky.daily_ghi_wh_m2(doy).max(1.0);
        let target_daily = location.ghi_for_doy_wh_m2(doy) * multipliers[day];
        let kt = (target_daily / clear_daily)
            .clamp(OffGridSystem::KT_RANGE.0, OffGridSystem::KT_RANGE.1);
        ambient[day] = location.temp_for_doy(doy);
        for hour in 0..24usize {
            poa[day * 24 + hour] = transposition.poa_w_m2(doy, hour as f64 + 0.5, kt);
        }
    }
    EnvironmentYear { ambient, poa }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::climate;

    fn vertical(location: &Location) -> Transposition {
        Transposition::vertical_south(SolarGeometry::at_latitude(location.latitude_deg()))
    }

    #[test]
    fn cached_year_is_bit_identical_to_a_fresh_computation() {
        let location = climate::berlin();
        let plane = vertical(&location);
        let cached = cached_year(&location, &plane, 0.95, 0.84, 7);
        let fresh = compute_year(&location, &plane, 0.95, 0.84, 7);
        assert_eq!(cached.ambient.len(), 365);
        assert_eq!(cached.poa.len(), 365 * 24);
        for (a, b) in cached.ambient.iter().zip(&fresh.ambient) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in cached.poa.iter().zip(&fresh.poa) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn same_inputs_share_one_computation() {
        let location = climate::madrid();
        let plane = vertical(&location);
        let first = cached_year(&location, &plane, 0.95, 0.60, 46);
        let second = cached_year(&location, &plane, 0.95, 0.60, 46);
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn distinct_seeds_and_sites_get_distinct_environments() {
        let madrid = climate::madrid();
        let berlin = climate::berlin();
        let plane_m = vertical(&madrid);
        let plane_b = vertical(&berlin);
        let a = cached_year(&madrid, &plane_m, 0.95, 0.60, 7);
        let b = cached_year(&madrid, &plane_m, 0.95, 0.60, 8);
        let c = cached_year(&berlin, &plane_b, 0.95, 0.84, 7);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.poa, b.poa);
        assert_ne!(a.poa, c.poa);
    }

    #[test]
    fn mounting_and_albedo_are_part_of_the_key() {
        let location = climate::lyon();
        let vertical_plane = vertical(&location);
        let tilted = Transposition::new(
            SolarGeometry::at_latitude(location.latitude_deg()),
            35.0,
            0.0,
        );
        let snowy = vertical(&location).with_ground_albedo(0.7);
        let a = cached_year(&location, &vertical_plane, 0.95, 0.65, 7);
        let b = cached_year(&location, &tilted, 0.95, 0.65, 7);
        let c = cached_year(&location, &snowy, 0.95, 0.65, 7);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        // identical weather, different projection
        assert_ne!(a.poa, b.poa);
        assert_eq!(a.ambient, b.ambient);
    }
}
